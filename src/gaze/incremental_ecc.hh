/**
 * @file
 * Incremental eccentricity re-fixation for eye-tracked streams.
 *
 * A static-fixation stream builds one EccentricityMap and reuses it
 * forever; an eye-tracked stream re-fixates every frame, and a full
 * per-pixel rebuild (one acos + two norms per pixel) per frame is the
 * dominant per-frame cost before any pixel is encoded. The insight —
 * the same one application-specific datapaths exploit — is that a gaze
 * delta changes the map *almost* by a translation: the eccentricity
 * field is centered on the fixation, so shifting the stored values by
 * the (rounded) gaze delta reproduces the new field up to perspective
 * distortion. IncrementalEccentricity therefore re-fixates in place:
 *
 *  1. **Shift** the map by the rounded pixel delta (row-wise memmove —
 *     no per-pixel math, no allocation).
 *  2. **Recompute exactly** the bands the shift cannot supply: the
 *     incoming border rows/columns (no source values) and the *foveal
 *     band* — every pixel whose true eccentricity is at most
 *     IncrementalEccParams::exactBandDeg (a clamped square around the
 *     new fixation covering that iso-eccentricity ellipse).
 *  3. **Fall back** to a full in-place rebuild when the delta exceeds
 *     maxShiftPx or the accumulated error bound exceeds
 *     maxAccumulatedErrorDeg.
 *
 * ## Exactness contract
 *
 * After refixate() the map satisfies, versus a fresh
 * EccentricityMap(geom) build at the new fixation:
 *
 *  - Recomputed pixels (incoming bands, foveal band, or everything on
 *    the fallback path) are **bit-identical** to the fresh build: both
 *    run the same DisplayGeometry::eccentricityDeg.
 *  - Every other (shifted) pixel differs by at most the *accumulated*
 *    error bound: each step contributes no more than
 *    shiftErrorBoundDeg() = (|delta| + |rounded delta|) / focal
 *    (radians, reported in degrees) — a rigorous bound from the
 *    spherical triangle inequality plus the fact that a view ray
 *    through a display plane at focal distance f rotates at most 1/f
 *    radians per pixel of plane motion. Bounds add across incremental
 *    steps and reset to zero on every full rebuild. In practice the
 *    observed error is ~3-4x below the bound and concentrated in the
 *    far periphery, where discrimination thresholds are flattest.
 *  - **No false foveal bypass**: provided exactBandDeg >=
 *    fovealCutoffDeg + maxAccumulatedErrorDeg, any pixel whose true
 *    eccentricity is below the encoder's foveal cutoff lies inside the
 *    always-exact band, so a tile the encoder would adjust on a fresh
 *    map is never bypassed on the incremental one (the reverse —
 *    adjusting a tile that could have been bypassed — costs work, not
 *    quality). core/pipeline.hh enforces this inequality at its gaze
 *    entry point.
 *
 * Steady-state re-fixation is allocation-free: the shift is in place,
 * the recompute writes in place, and the fallback rebuild reuses the
 * map's storage (EccentricityMap::rebuild).
 */

#ifndef PCE_GAZE_INCREMENTAL_ECC_HH
#define PCE_GAZE_INCREMENTAL_ECC_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "gaze/gaze_trace.hh"
#include "image/image.hh"
#include "perception/display.hh"

namespace pce {

/** Tuning of the incremental/fallback trade-off. */
struct IncrementalEccParams
{
    /**
     * Gaze deltas (pixels, Euclidean) above this re-fixate by full
     * rebuild. Saccade landings typically exceed it; fixation jitter
     * and smooth pursuit stay under it.
     */
    double maxShiftPx = 16.0;
    /**
     * Accumulated shift-error bound (degrees) that forces a rebuild.
     * Between rebuilds, per-step bounds (shiftErrorBoundDeg) add up;
     * crossing this cap resets the map to exact.
     */
    double maxAccumulatedErrorDeg = 6.0;
    /**
     * Pixels whose true eccentricity is at most this many degrees are
     * recomputed exactly after every shift. Must be at least the
     * encoder's foveal cutoff plus maxAccumulatedErrorDeg for the
     * no-false-bypass guarantee (defaults: 12 >= 5 + 6).
     */
    double exactBandDeg = 12.0;
};

/** What one refixate() call did (diagnostics and tests). */
struct RefixStats
{
    /** Fallback path: the whole map was rebuilt exactly. */
    bool fullRebuild = false;
    /** The requested fixation was clamped into the display. */
    bool clamped = false;
    /** Pixels moved by the shift (zero on the fallback path). */
    std::size_t shiftedPixels = 0;
    /** Pixels recomputed exactly (bands, or everything on fallback). */
    std::size_t recomputedPixels = 0;
    /** This step's shift error bound, degrees (0 when exact). */
    double stepErrorBoundDeg = 0.0;
    /** Accumulated bound since the last full rebuild, degrees. */
    double accumulatedErrorBoundDeg = 0.0;
    /** The always-exact clamped square around the new fixation. */
    TileRect exactRect{};
};

/**
 * In-place re-fixation of one EccentricityMap (see file comment for
 * the algorithm and contract). One updater drives one map: it tracks
 * the error bound accumulated in that map since its last exact state.
 * Not thread-safe; a per-stream owner (service slot, frame loop) calls
 * it from one thread at a time.
 */
class IncrementalEccentricity
{
  public:
    /**
     * @param geom Display geometry of the map (its fixation fields are
     *        ignored; the map carries the current fixation).
     * @param params Validated here; throws std::invalid_argument.
     */
    explicit IncrementalEccentricity(
        const DisplayGeometry &geom,
        const IncrementalEccParams &params = {});

    /**
     * Re-fixate @p map in place to (@p fix_x, @p fix_y), clamped into
     * the display. The map must match the constructor geometry's
     * dimensions (throws std::invalid_argument otherwise).
     * Allocation-free in the steady state.
     */
    void refixate(EccentricityMap &map, double fix_x, double fix_y,
                  RefixStats *stats = nullptr);

    /**
     * Exact full rebuild of @p map at (@p fix_x, @p fix_y), clamped
     * into the display, resetting the accumulated error bound — the
     * fallback path of refixate() exposed directly. This is the
     * integrity-recovery primitive: a map whose checksum no longer
     * matches (a bit flip, or writes through EccentricityMap::data())
     * is restored to a known-exact state at the given fixation.
     */
    void rebuildAt(EccentricityMap &map, double fix_x, double fix_y);

    /**
     * Rigorous per-step error bound (degrees) of re-fixating by shift
     * for the given gaze delta: (|delta| + |rounded delta|) / focal
     * radians. Recomputed bands are exact regardless.
     */
    static double shiftErrorBoundDeg(const DisplayGeometry &geom,
                                     double dx, double dy);

    /** Accumulated bound (degrees) since the driven map was exact. */
    double accumulatedErrorBoundDeg() const { return accumulated_; }

    const IncrementalEccParams &params() const { return params_; }

  private:
    /**
     * Half-width (pixels) of the clamped square around the fixation
     * that covers every pixel with eccentricity <= exactBandDeg.
     */
    double exactBandRadiusPx() const;

    DisplayGeometry geom_;  ///< fixation fields track the map's
    IncrementalEccParams params_;
    double accumulated_ = 0.0;
};

/**
 * Per-stream gaze state: an owned EccentricityMap, its incremental
 * updater, and a streaming I-VT classifier. update() classifies one
 * gaze sample and re-fixates the map for it — except during saccades,
 * where perception is suppressed and the encoder bypasses adjustment
 * anyway, so the map update is deferred until the saccade lands (the
 * landing delta usually takes the documented full-rebuild fallback;
 * the deferral saves the per-saccade-frame updates entirely).
 *
 * This is the state the encode service keeps per gaze stream so
 * concurrent streams re-fixate independently; a single-stream frame
 * loop uses it directly with PerceptualEncoder::encodeFrameGazeInto.
 */
class GazeTrackedEccentricity
{
  public:
    explicit GazeTrackedEccentricity(
        const DisplayGeometry &geom,
        const IncrementalEccParams &params = {},
        double saccade_velocity_deg_per_sec =
            kSaccadeVelocityDegPerSec);

    /**
     * Classify @p sample and bring the map up to date for it (unless
     * the sample is mid-saccade, see above). Returns the phase.
     */
    GazePhase update(const GazeSample &sample,
                     RefixStats *stats = nullptr);

    const EccentricityMap &map() const { return map_; }
    const IncrementalEccentricity &updater() const { return updater_; }

    /**
     * Mutable map access, for fault-injection campaigns (src/fault)
     * that flip bits in the live state. Writes through this are
     * exactly what the seal detects; production code re-fixates via
     * update() instead.
     */
    EccentricityMap &mutableMap() { return map_; }

    /** Phase of the last update() sample. */
    GazePhase phase() const { return phase_; }

    /** Stats of the last map-updating refixate (not deferred ones). */
    const RefixStats &lastRefix() const { return lastRefix_; }

    /** update() calls that re-fixated / that fell back to rebuild /
     *  that deferred (mid-saccade), since construction. */
    std::uint64_t refixations() const { return refixations_; }
    std::uint64_t fullRebuilds() const { return fullRebuilds_; }
    std::uint64_t deferredUpdates() const { return deferred_; }

    /**
     * Integrity sealing (docs/FAULTS.md): checksum the map values and
     * the fixation/error-bound bookkeeping. Once sealed, every
     * update() re-seals automatically (the deferred mid-saccade path
     * leaves the map untouched, so its seal stays valid), keeping the
     * seal current across a streaming session at one hash64 of the
     * map per re-fixation.
     */
    void sealState();

    /**
     * Recompute the checksum and compare against the seal. Returns
     * true when never sealed (no evidence either way) or when the
     * state matches; false on any mismatch. Const: no recovery.
     */
    bool verifyState() const;

    /**
     * verifyState(), plus recovery on mismatch: rebuild the map
     * exactly at the *sealed* fixation (IncrementalEccentricity::
     * rebuildAt), count the event, and re-seal. The classifier is
     * deliberately outside the seal — its few scalars are a vanishing
     * SEU cross-section next to the W*H doubles of the map, and a
     * corrupted classifier misroutes at most one frame's phase.
     * Returns true when the state was intact, false when it was
     * recovered (callers may count the detection).
     */
    bool verifyAndRecoverState();

    /** Recoveries performed by verifyAndRecoverState(). */
    std::uint64_t integrityRecoveries() const { return recoveries_; }

    /**
     * Exclusive-use guard for concurrent owners that *hand the state
     * off* between threads rather than share it (the sharded encode
     * service: any dispatcher may encode this stream's next frame
     * after stealing it, but the queue's lane protocol guarantees at
     * most one at a time). tryBeginExclusive() claims the state and
     * returns false if another thread currently holds it — callers
     * treat that as a protocol violation, since this class is not
     * thread-safe and two concurrent users mean corrupted gaze state.
     * The flag carries no data and establishes no ordering of its own;
     * the hand-off's happens-before comes from whatever synchronizes
     * the owners (the service's queue mutex).
     */
    bool tryBeginExclusive()
    { return !inUse_.test_and_set(std::memory_order_acquire); }
    void endExclusive() { inUse_.clear(std::memory_order_release); }

  private:
    /** Checksummed snapshot of the sealable state. */
    struct StateSeal
    {
        std::uint64_t mapHash = 0;
        double fixX = 0.0;
        double fixY = 0.0;
        double accumulated = 0.0;
        bool valid = false;
    };

    std::uint64_t mapHash() const;

    EccentricityMap map_;
    IncrementalEccentricity updater_;
    IVTClassifier classifier_;
    GazePhase phase_ = GazePhase::Fixation;
    RefixStats lastRefix_{};
    std::uint64_t refixations_ = 0;
    std::uint64_t fullRebuilds_ = 0;
    std::uint64_t deferred_ = 0;
    StateSeal seal_{};
    std::uint64_t recoveries_ = 0;
    std::atomic_flag inUse_ = ATOMIC_FLAG_INIT;
};

} // namespace pce

#endif // PCE_GAZE_INCREMENTAL_ECC_HH
