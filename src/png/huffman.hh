/**
 * @file
 * Canonical, length-limited Huffman codes for DEFLATE (RFC 1951).
 *
 * Code lengths are derived with the package-merge algorithm, which
 * produces optimal codes under a maximum-length constraint (DEFLATE
 * limits literal/length and distance codes to 15 bits and the code-length
 * alphabet to 7). Codes are then assigned canonically per RFC 1951
 * Sec. 3.2.2 so that lengths alone reproduce the code table — exactly
 * what the dynamic-Huffman block header transmits.
 */

#ifndef PCE_PNG_HUFFMAN_HH
#define PCE_PNG_HUFFMAN_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pce {

/**
 * Compute optimal length-limited code lengths for symbol frequencies.
 *
 * Symbols with zero frequency get length 0 (absent from the code).
 * If only one symbol has nonzero frequency it is assigned length 1,
 * matching what DEFLATE decoders expect.
 *
 * @param freqs      Symbol frequencies.
 * @param max_length Maximum allowed code length (>= 1).
 * @return Per-symbol code lengths.
 * @throws std::invalid_argument if the alphabet cannot be coded within
 *         max_length bits.
 */
std::vector<uint8_t> packageMergeLengths(const std::vector<uint64_t> &freqs,
                                         unsigned max_length);

/**
 * Assign canonical DEFLATE codes from code lengths (RFC 1951 3.2.2).
 * The returned codes are in "natural" MSB-first order; DEFLATE streams
 * emit them MSB-first within the LSB-first bit stream, which the
 * encoder handles by reversing bits at emission time.
 */
std::vector<uint32_t> canonicalCodes(const std::vector<uint8_t> &lengths);

/** Reverse the low @p width bits of @p v (DEFLATE emission order). */
uint32_t reverseBits(uint32_t v, unsigned width);

/**
 * A Huffman decoding table for inflate, built from code lengths.
 * Decoding walks bit by bit (simple and adequate for tests/benches;
 * the hot paths in this repository are the BD and perceptual codecs).
 */
class HuffmanDecoder
{
  public:
    /** Build from canonical code lengths. Throws on over-subscribed sets. */
    explicit HuffmanDecoder(const std::vector<uint8_t> &lengths);

    /**
     * Decode one symbol by consuming bits from @p next_bit, a callable
     * returning the next stream bit (0/1).
     * @return Symbol index, or -1 on invalid code.
     */
    template <typename NextBit>
    int
    decode(NextBit &&next_bit) const
    {
        uint32_t code = 0;
        unsigned len = 0;
        while (len < kMaxLen) {
            code = (code << 1) | (next_bit() & 1u);
            ++len;
            const auto &level = levels_[len];
            if (code >= level.firstCode &&
                code < level.firstCode + level.count)
                return static_cast<int>(
                    symbols_[level.firstSymbol + (code - level.firstCode)]);
        }
        return -1;
    }

  private:
    static constexpr unsigned kMaxLen = 15;

    struct Level
    {
        uint32_t firstCode = 0;
        uint32_t count = 0;
        uint32_t firstSymbol = 0;
    };

    std::vector<Level> levels_;
    std::vector<uint16_t> symbols_;
};

} // namespace pce

#endif // PCE_PNG_HUFFMAN_HH
