/**
 * @file
 * LZ77 match finder for DEFLATE (RFC 1951 semantics).
 *
 * Produces a token stream of literals and (length, distance) matches with
 * length in [3, 258] and distance in [1, 32768], using hash chains over
 * 3-byte prefixes with a bounded chain search and lazy matching — the
 * same construction zlib uses, sized for this repository's needs.
 */

#ifndef PCE_PNG_LZ77_HH
#define PCE_PNG_LZ77_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pce {

/** One LZ77 token: a literal byte or a back-reference. */
struct Lz77Token
{
    bool isMatch = false;
    uint8_t literal = 0;    ///< valid when !isMatch
    uint16_t length = 0;    ///< 3..258, valid when isMatch
    uint16_t distance = 0;  ///< 1..32768, valid when isMatch
};

/** Tuning knobs for the match finder. */
struct Lz77Params
{
    unsigned maxChainLength = 128;  ///< hash-chain probes per position
    unsigned niceLength = 128;      ///< stop searching at this match length
    bool lazyMatching = true;       ///< defer match by one byte if better
};

/** Tokenize @p data. The output reproduces @p data exactly when expanded. */
std::vector<Lz77Token> lz77Tokenize(const uint8_t *data, std::size_t n,
                                    const Lz77Params &params = {});

/** Expand tokens back to bytes (test oracle for the tokenizer). */
std::vector<uint8_t> lz77Expand(const std::vector<Lz77Token> &tokens);

} // namespace pce

#endif // PCE_PNG_LZ77_HH
