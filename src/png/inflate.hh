/**
 * @file
 * DEFLATE decompressor (RFC 1951) and zlib unwrapper (RFC 1950).
 *
 * Supports stored, fixed-Huffman, and dynamic-Huffman blocks. Used as the
 * round-trip oracle for the compressor in tests and by the PNG decoder.
 */

#ifndef PCE_PNG_INFLATE_HH
#define PCE_PNG_INFLATE_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pce {

/** Decompress a raw DEFLATE stream. Throws std::runtime_error on error. */
std::vector<uint8_t> inflateDecompress(const uint8_t *data, std::size_t n);

inline std::vector<uint8_t>
inflateDecompress(const std::vector<uint8_t> &data)
{
    return inflateDecompress(data.data(), data.size());
}

/** Unwrap a zlib container and verify its Adler-32 checksum. */
std::vector<uint8_t> zlibDecompress(const uint8_t *data, std::size_t n);

inline std::vector<uint8_t>
zlibDecompress(const std::vector<uint8_t> &data)
{
    return zlibDecompress(data.data(), data.size());
}

} // namespace pce

#endif // PCE_PNG_INFLATE_HH
