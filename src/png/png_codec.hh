/**
 * @file
 * PNG encoder/decoder for 8-bit RGB images (the Sec. 5.3 PNG baseline).
 *
 * Encoding applies per-scanline filtering (types 0-4 with the libpng
 * minimum-sum-of-absolute-differences heuristic) followed by our DEFLATE
 * (src/png/deflate.hh) inside a standard IHDR/IDAT/IEND container, so the
 * output is a valid PNG file. The decoder reverses filtering and verifies
 * both CRCs and the zlib Adler-32, serving as the lossless round-trip
 * oracle in tests.
 *
 * The paper uses PNG only as an offline upper-ish baseline (it is too
 * slow for framebuffer traffic, Sec. 5.3); the benchmark harness reports
 * its compressed size alongside BD and ours in Fig. 10.
 */

#ifndef PCE_PNG_PNG_CODEC_HH
#define PCE_PNG_PNG_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.hh"
#include "png/deflate.hh"

namespace pce {

/** Encode an image as a standalone PNG byte stream. */
std::vector<uint8_t> pngEncode(const ImageU8 &img,
                               const DeflateParams &params = {});

/** Decode a PNG produced by pngEncode (8-bit RGB, non-interlaced). */
ImageU8 pngDecode(const std::vector<uint8_t> &bytes);

/** Write a PNG file to disk. */
void writePng(const std::string &path, const ImageU8 &img);

/**
 * Apply PNG scanline filtering to raw RGB rows, returning the filtered
 * byte stream (one filter-type byte per row). Exposed for tests.
 */
std::vector<uint8_t> pngFilterScanlines(const ImageU8 &img);

/** Reverse pngFilterScanlines. Exposed for tests. */
ImageU8 pngUnfilterScanlines(const std::vector<uint8_t> &filtered,
                             int width, int height);

} // namespace pce

#endif // PCE_PNG_PNG_CODEC_HH
