#include "png/png_codec.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/integrity.hh"
#include "png/inflate.hh"

namespace pce {

namespace {

constexpr uint8_t kSignature[8] = {0x89, 'P', 'N', 'G', '\r', '\n',
                                   0x1a, '\n'};

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>((v >> 24) & 0xff));
    out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<uint8_t>(v & 0xff));
}

uint32_t
getU32(const uint8_t *p)
{
    return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
           (uint32_t(p[2]) << 8) | uint32_t(p[3]);
}

void
appendChunk(std::vector<uint8_t> &out, const char type[4],
            const std::vector<uint8_t> &payload)
{
    putU32(out, static_cast<uint32_t>(payload.size()));
    const std::size_t crc_start = out.size();
    out.insert(out.end(), type, type + 4);
    out.insert(out.end(), payload.begin(), payload.end());
    out.reserve(out.size() + 4);
    putU32(out, crc32(out.data() + crc_start, out.size() - crc_start));
}

int
paeth(int a, int b, int c)
{
    const int p = a + b - c;
    const int pa = std::abs(p - a);
    const int pb = std::abs(p - b);
    const int pc = std::abs(p - c);
    if (pa <= pb && pa <= pc)
        return a;
    return pb <= pc ? b : c;
}

/** Filter one row with the given type; bpp = 3 for RGB. */
void
filterRow(uint8_t type, const uint8_t *row, const uint8_t *prev,
          std::size_t rowbytes, uint8_t *out)
{
    constexpr int bpp = 3;
    for (std::size_t i = 0; i < rowbytes; ++i) {
        const int x = row[i];
        const int a = i >= bpp ? row[i - bpp] : 0;
        const int b = prev ? prev[i] : 0;
        const int c = (prev && i >= bpp) ? prev[i - bpp] : 0;
        int v;
        switch (type) {
          case 0: v = x; break;
          case 1: v = x - a; break;
          case 2: v = x - b; break;
          case 3: v = x - (a + b) / 2; break;
          case 4: v = x - paeth(a, b, c); break;
          default:
            throw std::logic_error("filterRow: bad type");
        }
        out[i] = static_cast<uint8_t>(v & 0xff);
    }
}

/** Reverse a row filter in place. */
void
unfilterRow(uint8_t type, uint8_t *row, const uint8_t *prev,
            std::size_t rowbytes)
{
    constexpr int bpp = 3;
    for (std::size_t i = 0; i < rowbytes; ++i) {
        const int a = i >= bpp ? row[i - bpp] : 0;
        const int b = prev ? prev[i] : 0;
        const int c = (prev && i >= bpp) ? prev[i - bpp] : 0;
        int v = row[i];
        switch (type) {
          case 0: break;
          case 1: v += a; break;
          case 2: v += b; break;
          case 3: v += (a + b) / 2; break;
          case 4: v += paeth(a, b, c); break;
          default:
            throw std::runtime_error("unfilterRow: bad filter type");
        }
        row[i] = static_cast<uint8_t>(v & 0xff);
    }
}

} // namespace

std::vector<uint8_t>
pngFilterScanlines(const ImageU8 &img)
{
    const std::size_t rowbytes = static_cast<std::size_t>(img.width()) * 3;
    std::vector<uint8_t> out;
    out.reserve((rowbytes + 1) * img.height());

    std::vector<uint8_t> candidate(rowbytes);
    std::vector<uint8_t> best(rowbytes);
    for (int y = 0; y < img.height(); ++y) {
        const uint8_t *row = img.pixel(0, y);
        const uint8_t *prev = y > 0 ? img.pixel(0, y - 1) : nullptr;

        // libpng heuristic: pick the filter with the minimum sum of
        // absolute values of the filtered bytes (as signed).
        uint8_t best_type = 0;
        uint64_t best_score = ~uint64_t(0);
        for (uint8_t type = 0; type <= 4; ++type) {
            filterRow(type, row, prev, rowbytes, candidate.data());
            uint64_t score = 0;
            for (uint8_t v : candidate) {
                const int s = v < 128 ? v : 256 - v;
                score += static_cast<uint64_t>(s);
            }
            if (score < best_score) {
                best_score = score;
                best_type = type;
                best.swap(candidate);
            }
        }
        out.push_back(best_type);
        out.insert(out.end(), best.begin(), best.end());
        // `best` may have been swapped from candidate; re-filter to keep
        // the buffer sized for the next iteration (vectors stay equal
        // size, so nothing to do).
    }
    return out;
}

ImageU8
pngUnfilterScanlines(const std::vector<uint8_t> &filtered, int width,
                     int height)
{
    const std::size_t rowbytes = static_cast<std::size_t>(width) * 3;
    if (filtered.size() !=
        (rowbytes + 1) * static_cast<std::size_t>(height))
        throw std::runtime_error("pngUnfilterScanlines: size mismatch");

    ImageU8 img(width, height);
    for (int y = 0; y < height; ++y) {
        const std::size_t off =
            static_cast<std::size_t>(y) * (rowbytes + 1);
        const uint8_t type = filtered[off];
        uint8_t *row = img.pixel(0, y);
        std::memcpy(row, filtered.data() + off + 1, rowbytes);
        const uint8_t *prev = y > 0 ? img.pixel(0, y - 1) : nullptr;
        unfilterRow(type, row, prev, rowbytes);
    }
    return img;
}

std::vector<uint8_t>
pngEncode(const ImageU8 &img, const DeflateParams &params)
{
    std::vector<uint8_t> out(kSignature, kSignature + 8);

    std::vector<uint8_t> ihdr;
    putU32(ihdr, static_cast<uint32_t>(img.width()));
    putU32(ihdr, static_cast<uint32_t>(img.height()));
    ihdr.push_back(8);  // bit depth
    ihdr.push_back(2);  // color type: truecolor RGB
    ihdr.push_back(0);  // compression: deflate
    ihdr.push_back(0);  // filter method 0
    ihdr.push_back(0);  // no interlace
    appendChunk(out, "IHDR", ihdr);

    const auto filtered = pngFilterScanlines(img);
    const auto idat = zlibCompress(filtered, params);
    appendChunk(out, "IDAT", idat);

    appendChunk(out, "IEND", {});
    return out;
}

ImageU8
pngDecode(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < 8 || std::memcmp(bytes.data(), kSignature, 8) != 0)
        throw std::runtime_error("pngDecode: bad signature");

    int width = 0;
    int height = 0;
    std::vector<uint8_t> idat;
    std::size_t pos = 8;
    bool saw_end = false;
    while (pos + 8 <= bytes.size() && !saw_end) {
        const uint32_t len = getU32(bytes.data() + pos);
        if (pos + 12 + len > bytes.size())
            throw std::runtime_error("pngDecode: truncated chunk");
        const char *type =
            reinterpret_cast<const char *>(bytes.data() + pos + 4);
        const uint8_t *payload = bytes.data() + pos + 8;

        const uint32_t want_crc = getU32(payload + len);
        if (crc32(bytes.data() + pos + 4, len + 4) != want_crc)
            throw std::runtime_error("pngDecode: chunk CRC mismatch");

        if (std::memcmp(type, "IHDR", 4) == 0) {
            if (len != 13)
                throw std::runtime_error("pngDecode: bad IHDR");
            width = static_cast<int>(getU32(payload));
            height = static_cast<int>(getU32(payload + 4));
            // Cap dimensions so corrupted headers cannot drive huge
            // allocations or overflow the scanline-size arithmetic.
            if (width <= 0 || height <= 0 || width > (1 << 20) ||
                height > (1 << 20))
                throw std::runtime_error("pngDecode: absurd dimensions");
            if (payload[8] != 8 || payload[9] != 2 || payload[12] != 0)
                throw std::runtime_error(
                    "pngDecode: only 8-bit RGB non-interlaced supported");
        } else if (std::memcmp(type, "IDAT", 4) == 0) {
            idat.insert(idat.end(), payload, payload + len);
        } else if (std::memcmp(type, "IEND", 4) == 0) {
            saw_end = true;
        }
        pos += 12 + len;
    }
    if (!saw_end || width <= 0 || height <= 0)
        throw std::runtime_error("pngDecode: missing chunks");

    const auto filtered = zlibDecompress(idat);
    return pngUnfilterScanlines(filtered, width, height);
}

void
writePng(const std::string &path, const ImageU8 &img)
{
    const auto bytes = pngEncode(img);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("writePng: cannot open " + path);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f)
        throw std::runtime_error("writePng: write failed for " + path);
}

} // namespace pce
