#include "png/deflate.hh"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/bitstream.hh"
#include "common/integrity.hh"
#include "png/huffman.hh"

namespace pce {

namespace {

// RFC 1951 Sec. 3.2.5: length codes 257..285.
struct LengthTableRow
{
    uint16_t base;
    uint8_t extra;
};

constexpr std::array<LengthTableRow, 29> kLengthTable{{
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},
    {9, 0},   {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1},
    {19, 2},  {23, 2},  {27, 2},  {31, 2},  {35, 3},  {43, 3},
    {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
}};

// Distance codes 0..29.
constexpr std::array<LengthTableRow, 30> kDistTable{{
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},
    {7, 1},     {9, 2},     {13, 2},    {17, 3},    {25, 3},
    {33, 4},    {49, 4},    {65, 5},    {97, 5},    {129, 6},
    {193, 6},   {257, 7},   {385, 7},   {513, 8},   {769, 8},
    {1025, 9},  {1537, 9},  {2049, 10}, {3073, 10}, {4097, 11},
    {6145, 11}, {8193, 12}, {12289, 12},{16385, 13},{24577, 13},
}};

// Order in which code-length-code lengths are transmitted (3.2.7).
constexpr std::array<uint8_t, 19> kClcOrder{
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

constexpr unsigned kEndOfBlock = 256;
constexpr std::size_t kLitAlphabet = 286;
constexpr std::size_t kDistAlphabet = 30;

/** Code-length-code RLE symbol (RFC 1951 3.2.7). */
struct ClcSymbol
{
    uint8_t symbol;  ///< 0..18
    uint8_t extra;   ///< repeat payload for 16/17/18
};

/** Run-length encode the concatenated lit+dist code lengths. */
std::vector<ClcSymbol>
rleCodeLengths(const std::vector<uint8_t> &lengths)
{
    std::vector<ClcSymbol> out;
    std::size_t i = 0;
    while (i < lengths.size()) {
        const uint8_t v = lengths[i];
        std::size_t run = 1;
        while (i + run < lengths.size() && lengths[i + run] == v)
            ++run;

        if (v == 0) {
            std::size_t left = run;
            while (left >= 11) {
                const auto take =
                    static_cast<uint8_t>(std::min<std::size_t>(left, 138));
                out.push_back({18, static_cast<uint8_t>(take - 11)});
                left -= take;
            }
            while (left >= 3) {
                const auto take =
                    static_cast<uint8_t>(std::min<std::size_t>(left, 10));
                out.push_back({17, static_cast<uint8_t>(take - 3)});
                left -= take;
            }
            for (; left > 0; --left)
                out.push_back({0, 0});
        } else {
            out.push_back({v, 0});
            std::size_t left = run - 1;
            while (left >= 3) {
                const auto take =
                    static_cast<uint8_t>(std::min<std::size_t>(left, 6));
                out.push_back({16, static_cast<uint8_t>(take - 3)});
                left -= take;
            }
            for (; left > 0; --left)
                out.push_back({v, 0});
        }
        i += run;
    }
    return out;
}

void
emitCode(LsbBitWriter &bw, uint32_t code, uint8_t length)
{
    // Huffman codes are emitted MSB-first inside the LSB-first stream.
    bw.putBits(reverseBits(code, length), length);
}

/** Emit one dynamic-Huffman DEFLATE block for a token slice. */
void
emitDynamicBlock(LsbBitWriter &bw, const std::vector<Lz77Token> &tokens,
                 std::size_t begin, std::size_t end, bool final_block)
{
    // Symbol frequencies for this block.
    std::vector<uint64_t> lit_freq(kLitAlphabet, 0);
    std::vector<uint64_t> dist_freq(kDistAlphabet, 0);
    for (std::size_t i = begin; i < end; ++i) {
        const auto &t = tokens[i];
        if (t.isMatch) {
            lit_freq[lengthCodeFor(t.length).code] += 1;
            dist_freq[distanceCodeFor(t.distance).code] += 1;
        } else {
            lit_freq[t.literal] += 1;
        }
    }
    lit_freq[kEndOfBlock] += 1;

    auto lit_lengths = packageMergeLengths(lit_freq, 15);
    auto dist_lengths = packageMergeLengths(dist_freq, 15);

    // HLIT/HDIST must cover at least 257/1 codes; a block with no
    // matches still transmits one distance code (length may be 0, but
    // at least one entry must exist). Give the all-zero case a dummy
    // 1-bit code for symbol 0, which decoders accept.
    if (std::all_of(dist_lengths.begin(), dist_lengths.end(),
                    [](uint8_t l) { return l == 0; }))
        dist_lengths[0] = 1;

    // Trim trailing zero lengths.
    std::size_t hlit = kLitAlphabet;
    while (hlit > 257 && lit_lengths[hlit - 1] == 0)
        --hlit;
    std::size_t hdist = kDistAlphabet;
    while (hdist > 1 && dist_lengths[hdist - 1] == 0)
        --hdist;

    // Code-length code over the RLE'd lengths.
    std::vector<uint8_t> all_lengths(lit_lengths.begin(),
                                     lit_lengths.begin() + hlit);
    all_lengths.insert(all_lengths.end(), dist_lengths.begin(),
                       dist_lengths.begin() + hdist);
    const auto clc_syms = rleCodeLengths(all_lengths);

    std::vector<uint64_t> clc_freq(19, 0);
    for (const auto &s : clc_syms)
        clc_freq[s.symbol] += 1;
    auto clc_lengths = packageMergeLengths(clc_freq, 7);

    std::size_t hclen = 19;
    while (hclen > 4 && clc_lengths[kClcOrder[hclen - 1]] == 0)
        --hclen;

    // Block header.
    bw.putBits(final_block ? 1 : 0, 1);
    bw.putBits(2, 2);  // dynamic Huffman
    bw.putBits(static_cast<uint32_t>(hlit - 257), 5);
    bw.putBits(static_cast<uint32_t>(hdist - 1), 5);
    bw.putBits(static_cast<uint32_t>(hclen - 4), 4);
    for (std::size_t i = 0; i < hclen; ++i)
        bw.putBits(clc_lengths[kClcOrder[i]], 3);

    const auto clc_codes = canonicalCodes(clc_lengths);
    for (const auto &s : clc_syms) {
        emitCode(bw, clc_codes[s.symbol], clc_lengths[s.symbol]);
        if (s.symbol == 16)
            bw.putBits(s.extra, 2);
        else if (s.symbol == 17)
            bw.putBits(s.extra, 3);
        else if (s.symbol == 18)
            bw.putBits(s.extra, 7);
    }

    // Token payload.
    const auto lit_codes = canonicalCodes(lit_lengths);
    const auto dist_codes = canonicalCodes(dist_lengths);
    for (std::size_t i = begin; i < end; ++i) {
        const auto &t = tokens[i];
        if (!t.isMatch) {
            emitCode(bw, lit_codes[t.literal], lit_lengths[t.literal]);
            continue;
        }
        const LengthCode lc = lengthCodeFor(t.length);
        emitCode(bw, lit_codes[lc.code], lit_lengths[lc.code]);
        if (lc.extraBits)
            bw.putBits(t.length - lc.base, lc.extraBits);
        const LengthCode dc = distanceCodeFor(t.distance);
        emitCode(bw, dist_codes[dc.code], dist_lengths[dc.code]);
        if (dc.extraBits)
            bw.putBits(t.distance - dc.base, dc.extraBits);
    }
    emitCode(bw, lit_codes[kEndOfBlock], lit_lengths[kEndOfBlock]);
}

/** Emit a stored (uncompressed) block. */
void
emitStoredBlock(LsbBitWriter &bw, const uint8_t *data, std::size_t n,
                bool final_block)
{
    bw.putBits(final_block ? 1 : 0, 1);
    bw.putBits(0, 2);  // stored
    bw.alignToByte();
    bw.putAlignedByte(static_cast<uint8_t>(n & 0xff));
    bw.putAlignedByte(static_cast<uint8_t>((n >> 8) & 0xff));
    bw.putAlignedByte(static_cast<uint8_t>(~n & 0xff));
    bw.putAlignedByte(static_cast<uint8_t>((~n >> 8) & 0xff));
    for (std::size_t i = 0; i < n; ++i)
        bw.putAlignedByte(data[i]);
}

} // namespace

LengthCode
lengthCodeFor(unsigned length)
{
    if (length < 3 || length > 258)
        throw std::invalid_argument("lengthCodeFor: out of range");
    for (std::size_t i = kLengthTable.size(); i-- > 0;) {
        if (length >= kLengthTable[i].base)
            return {static_cast<uint16_t>(257 + i), kLengthTable[i].extra,
                    kLengthTable[i].base};
    }
    throw std::logic_error("lengthCodeFor: unreachable");
}

LengthCode
distanceCodeFor(unsigned distance)
{
    if (distance < 1 || distance > 32768)
        throw std::invalid_argument("distanceCodeFor: out of range");
    for (std::size_t i = kDistTable.size(); i-- > 0;) {
        if (distance >= kDistTable[i].base)
            return {static_cast<uint16_t>(i), kDistTable[i].extra,
                    kDistTable[i].base};
    }
    throw std::logic_error("distanceCodeFor: unreachable");
}

std::vector<uint8_t>
deflateCompress(const uint8_t *data, std::size_t n,
                const DeflateParams &params)
{
    LsbBitWriter bw;
    if (n == 0) {
        // A single empty stored block.
        emitStoredBlock(bw, data, 0, true);
        bw.alignToByte();
        return bw.take();
    }

    const auto tokens = lz77Tokenize(data, n, params.lz77);
    const std::size_t per_block = params.maxTokensPerBlock;
    for (std::size_t begin = 0; begin < tokens.size();
         begin += per_block) {
        const std::size_t end =
            std::min(tokens.size(), begin + per_block);
        const bool final_block = end == tokens.size();
        emitDynamicBlock(bw, tokens, begin, end, final_block);
    }
    bw.alignToByte();
    return bw.take();
}

std::vector<uint8_t>
zlibCompress(const uint8_t *data, std::size_t n,
             const DeflateParams &params)
{
    std::vector<uint8_t> out;
    // CMF: deflate with 32K window; FLG chosen so (CMF*256+FLG) % 31 == 0.
    const uint8_t cmf = 0x78;
    uint8_t flg = 0x00;
    const unsigned rem = (cmf * 256u + flg) % 31u;
    if (rem != 0)
        flg = static_cast<uint8_t>(31 - rem);
    out.push_back(cmf);
    out.push_back(flg);

    const auto body = deflateCompress(data, n, params);
    out.insert(out.end(), body.begin(), body.end());

    const uint32_t a = adler32(data, n);
    out.push_back(static_cast<uint8_t>((a >> 24) & 0xff));
    out.push_back(static_cast<uint8_t>((a >> 16) & 0xff));
    out.push_back(static_cast<uint8_t>((a >> 8) & 0xff));
    out.push_back(static_cast<uint8_t>(a & 0xff));
    return out;
}

} // namespace pce
