/**
 * @file
 * DEFLATE compressor and zlib container (RFC 1951 / RFC 1950).
 *
 * The PNG baseline of the paper (Sec. 5.3) needs a real general-purpose
 * compressor; this module provides one with dynamic-Huffman blocks built
 * on the LZ77 tokenizer and package-merge Huffman codes. Stored blocks
 * are used when they are cheaper (e.g., incompressible data).
 */

#ifndef PCE_PNG_DEFLATE_HH
#define PCE_PNG_DEFLATE_HH

#include <cstdint>
#include <cstddef>
#include <vector>

#include "png/lz77.hh"

namespace pce {

/** Compressor configuration. */
struct DeflateParams
{
    Lz77Params lz77;
    /** Max LZ77 tokens per DEFLATE block before starting a new one. */
    std::size_t maxTokensPerBlock = 1 << 16;
};

/** Compress @p data into a raw DEFLATE stream. */
std::vector<uint8_t> deflateCompress(const uint8_t *data, std::size_t n,
                                     const DeflateParams &params = {});

inline std::vector<uint8_t>
deflateCompress(const std::vector<uint8_t> &data,
                const DeflateParams &params = {})
{
    return deflateCompress(data.data(), data.size(), params);
}

/** Wrap a raw DEFLATE stream in a zlib container (RFC 1950). */
std::vector<uint8_t> zlibCompress(const uint8_t *data, std::size_t n,
                                  const DeflateParams &params = {});

inline std::vector<uint8_t>
zlibCompress(const std::vector<uint8_t> &data,
             const DeflateParams &params = {})
{
    return zlibCompress(data.data(), data.size(), params);
}

/**
 * DEFLATE length-code table entry: code index, extra bits, base value
 * (RFC 1951 Sec. 3.2.5). Exposed for the decoder and tests.
 */
struct LengthCode
{
    uint16_t code;
    uint8_t extraBits;
    uint16_t base;
};

/** Map a match length (3..258) to its length code. */
LengthCode lengthCodeFor(unsigned length);

/** Map a match distance (1..32768) to its distance code. */
LengthCode distanceCodeFor(unsigned distance);

} // namespace pce

#endif // PCE_PNG_DEFLATE_HH
