/**
 * @file
 * CRC-32 (PNG chunk checksum, ISO 3309) and Adler-32 (zlib checksum).
 */

#ifndef PCE_PNG_CHECKSUM_HH
#define PCE_PNG_CHECKSUM_HH

#include <cstdint>
#include <cstddef>

namespace pce {

/** Incrementally updatable CRC-32 as used by PNG. */
class Crc32
{
  public:
    /** Feed @p n bytes. */
    void update(const uint8_t *data, std::size_t n);

    /** Final checksum value. */
    uint32_t value() const { return state_ ^ 0xffffffffu; }

  private:
    uint32_t state_ = 0xffffffffu;
};

/** One-shot CRC-32 of a buffer. */
uint32_t crc32(const uint8_t *data, std::size_t n);

/** Incrementally updatable Adler-32 as used by zlib (RFC 1950). */
class Adler32
{
  public:
    void update(const uint8_t *data, std::size_t n);
    uint32_t value() const { return (b_ << 16) | a_; }

  private:
    uint32_t a_ = 1;
    uint32_t b_ = 0;
};

/** One-shot Adler-32 of a buffer. */
uint32_t adler32(const uint8_t *data, std::size_t n);

} // namespace pce

#endif // PCE_PNG_CHECKSUM_HH
