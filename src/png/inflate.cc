#include "png/inflate.hh"

#include <array>
#include <stdexcept>

#include "common/bitstream.hh"
#include "common/integrity.hh"
#include "png/huffman.hh"

namespace pce {

namespace {

constexpr std::array<uint16_t, 29> kLengthBase{
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<uint8_t, 29> kLengthExtra{
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::array<uint16_t, 30> kDistBase{
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<uint8_t, 30> kDistExtra{
    0, 0, 0, 0, 1, 1, 2, 2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};
constexpr std::array<uint8_t, 19> kClcOrder{
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

std::vector<uint8_t>
fixedLitLengths()
{
    std::vector<uint8_t> lengths(288);
    for (int i = 0; i <= 143; ++i)
        lengths[i] = 8;
    for (int i = 144; i <= 255; ++i)
        lengths[i] = 9;
    for (int i = 256; i <= 279; ++i)
        lengths[i] = 7;
    for (int i = 280; i <= 287; ++i)
        lengths[i] = 8;
    return lengths;
}

void
inflateBlockPayload(LsbBitReader &br, const HuffmanDecoder &lit,
                    const HuffmanDecoder &dist, std::vector<uint8_t> &out)
{
    auto next_bit = [&br]() { return br.getBit(); };
    for (;;) {
        const int sym = lit.decode(next_bit);
        if (sym < 0 || br.exhausted())
            throw std::runtime_error("inflate: bad literal/length code");
        if (sym < 256) {
            out.push_back(static_cast<uint8_t>(sym));
            continue;
        }
        if (sym == 256)
            return;  // end of block
        const unsigned li = static_cast<unsigned>(sym) - 257;
        if (li >= kLengthBase.size())
            throw std::runtime_error("inflate: invalid length symbol");
        const unsigned length =
            kLengthBase[li] + br.getBits(kLengthExtra[li]);

        const int dsym = dist.decode(next_bit);
        if (dsym < 0 || static_cast<unsigned>(dsym) >= kDistBase.size())
            throw std::runtime_error("inflate: invalid distance symbol");
        const unsigned distance =
            kDistBase[dsym] + br.getBits(kDistExtra[dsym]);
        if (distance == 0 || distance > out.size())
            throw std::runtime_error("inflate: distance out of range");
        for (unsigned i = 0; i < length; ++i)
            out.push_back(out[out.size() - distance]);
    }
}

} // namespace

std::vector<uint8_t>
inflateDecompress(const uint8_t *data, std::size_t n)
{
    LsbBitReader br(data, n);
    std::vector<uint8_t> out;

    bool final_block = false;
    while (!final_block) {
        final_block = br.getBit() != 0;
        const uint32_t btype = br.getBits(2);
        if (br.exhausted())
            throw std::runtime_error("inflate: truncated header");

        if (btype == 0) {
            br.alignToByte();
            const uint32_t len = br.getBits(8) | (br.getBits(8) << 8);
            const uint32_t nlen = br.getBits(8) | (br.getBits(8) << 8);
            if ((len ^ nlen) != 0xffffu)
                throw std::runtime_error("inflate: stored LEN mismatch");
            for (uint32_t i = 0; i < len; ++i)
                out.push_back(static_cast<uint8_t>(br.getBits(8)));
            if (br.exhausted())
                throw std::runtime_error("inflate: truncated stored block");
        } else if (btype == 1) {
            static const HuffmanDecoder lit(fixedLitLengths());
            static const HuffmanDecoder dist(
                std::vector<uint8_t>(30, 5));
            inflateBlockPayload(br, lit, dist, out);
        } else if (btype == 2) {
            const unsigned hlit = br.getBits(5) + 257;
            const unsigned hdist = br.getBits(5) + 1;
            const unsigned hclen = br.getBits(4) + 4;
            std::vector<uint8_t> clc_lengths(19, 0);
            for (unsigned i = 0; i < hclen; ++i)
                clc_lengths[kClcOrder[i]] =
                    static_cast<uint8_t>(br.getBits(3));
            const HuffmanDecoder clc(clc_lengths);

            std::vector<uint8_t> lengths;
            lengths.reserve(hlit + hdist);
            auto next_bit = [&br]() { return br.getBit(); };
            while (lengths.size() < hlit + hdist) {
                const int sym = clc.decode(next_bit);
                if (sym < 0 || br.exhausted())
                    throw std::runtime_error("inflate: bad CLC code");
                if (sym < 16) {
                    lengths.push_back(static_cast<uint8_t>(sym));
                } else if (sym == 16) {
                    if (lengths.empty())
                        throw std::runtime_error(
                            "inflate: repeat with no previous length");
                    const unsigned rep = 3 + br.getBits(2);
                    lengths.insert(lengths.end(), rep, lengths.back());
                } else if (sym == 17) {
                    const unsigned rep = 3 + br.getBits(3);
                    lengths.insert(lengths.end(), rep, 0);
                } else {
                    const unsigned rep = 11 + br.getBits(7);
                    lengths.insert(lengths.end(), rep, 0);
                }
            }
            if (lengths.size() != hlit + hdist)
                throw std::runtime_error("inflate: code length overflow");

            const std::vector<uint8_t> lit_lengths(
                lengths.begin(), lengths.begin() + hlit);
            const std::vector<uint8_t> dist_lengths(
                lengths.begin() + hlit, lengths.end());
            const HuffmanDecoder lit(lit_lengths);
            const HuffmanDecoder dist(dist_lengths);
            inflateBlockPayload(br, lit, dist, out);
        } else {
            throw std::runtime_error("inflate: reserved block type");
        }
    }
    return out;
}

std::vector<uint8_t>
zlibDecompress(const uint8_t *data, std::size_t n)
{
    if (n < 6)
        throw std::runtime_error("zlib: stream too short");
    const uint8_t cmf = data[0];
    const uint8_t flg = data[1];
    if ((cmf & 0x0f) != 8)
        throw std::runtime_error("zlib: not deflate");
    if ((cmf * 256u + flg) % 31u != 0)
        throw std::runtime_error("zlib: bad header check");
    if (flg & 0x20)
        throw std::runtime_error("zlib: preset dictionary unsupported");

    auto out = inflateDecompress(data + 2, n - 6);
    const uint32_t want = (uint32_t(data[n - 4]) << 24) |
                          (uint32_t(data[n - 3]) << 16) |
                          (uint32_t(data[n - 2]) << 8) |
                          uint32_t(data[n - 1]);
    if (adler32(out.data(), out.size()) != want)
        throw std::runtime_error("zlib: adler32 mismatch");
    return out;
}

} // namespace pce
