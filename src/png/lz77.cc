#include "png/lz77.hh"

#include <algorithm>
#include <stdexcept>

namespace pce {

namespace {

constexpr std::size_t kWindowSize = 32768;
constexpr unsigned kMinMatch = 3;
constexpr unsigned kMaxMatch = 258;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = std::size_t(1) << kHashBits;

uint32_t
hash3(const uint8_t *p)
{
    const uint32_t v = p[0] | (p[1] << 8) | (p[2] << 16);
    return (v * 0x9e3779b1u) >> (32 - kHashBits);
}

/** Longest match at @p pos against @p cand, capped to the input end. */
unsigned
matchLength(const uint8_t *data, std::size_t n, std::size_t pos,
            std::size_t cand)
{
    const unsigned cap = static_cast<unsigned>(
        std::min<std::size_t>(kMaxMatch, n - pos));
    unsigned len = 0;
    while (len < cap && data[cand + len] == data[pos + len])
        ++len;
    return len;
}

} // namespace

std::vector<Lz77Token>
lz77Tokenize(const uint8_t *data, std::size_t n, const Lz77Params &params)
{
    std::vector<Lz77Token> tokens;
    tokens.reserve(n / 4);

    // head[h]: most recent position with hash h; prev[i % window]: chain.
    std::vector<int64_t> head(kHashSize, -1);
    std::vector<int64_t> prev(kWindowSize, -1);

    auto insert = [&](std::size_t pos) {
        if (pos + kMinMatch > n)
            return;
        const uint32_t h = hash3(data + pos);
        prev[pos % kWindowSize] = head[h];
        head[h] = static_cast<int64_t>(pos);
    };

    auto find_best = [&](std::size_t pos, unsigned &best_len,
                         std::size_t &best_dist) {
        best_len = 0;
        best_dist = 0;
        if (pos + kMinMatch > n)
            return;
        int64_t cand = head[hash3(data + pos)];
        unsigned chain = params.maxChainLength;
        const std::size_t min_pos =
            pos >= kWindowSize ? pos - kWindowSize : 0;
        while (cand >= 0 && chain-- > 0) {
            const auto c = static_cast<std::size_t>(cand);
            if (c < min_pos || c >= pos)
                break;
            const unsigned len = matchLength(data, n, pos, c);
            if (len > best_len) {
                best_len = len;
                best_dist = pos - c;
                if (len >= params.niceLength || len >= kMaxMatch)
                    break;
            }
            cand = prev[c % kWindowSize];
        }
        if (best_len < kMinMatch)
            best_len = 0;
    };

    std::size_t pos = 0;
    while (pos < n) {
        unsigned len;
        std::size_t dist;
        find_best(pos, len, dist);

        if (len >= kMinMatch && params.lazyMatching && pos + 1 < n) {
            // Lazy evaluation: if the next position has a strictly
            // better match, emit a literal here instead.
            insert(pos);
            unsigned next_len;
            std::size_t next_dist;
            find_best(pos + 1, next_len, next_dist);
            if (next_len > len) {
                Lz77Token t;
                t.isMatch = false;
                t.literal = data[pos];
                tokens.push_back(t);
                ++pos;
                continue;
            }
            // Keep the current match; pos was already inserted.
            Lz77Token t;
            t.isMatch = true;
            t.length = static_cast<uint16_t>(len);
            t.distance = static_cast<uint16_t>(dist);
            tokens.push_back(t);
            for (std::size_t i = pos + 1; i < pos + len; ++i)
                insert(i);
            pos += len;
            continue;
        }

        if (len >= kMinMatch) {
            Lz77Token t;
            t.isMatch = true;
            t.length = static_cast<uint16_t>(len);
            t.distance = static_cast<uint16_t>(dist);
            tokens.push_back(t);
            for (std::size_t i = pos; i < pos + len; ++i)
                insert(i);
            pos += len;
        } else {
            Lz77Token t;
            t.isMatch = false;
            t.literal = data[pos];
            tokens.push_back(t);
            insert(pos);
            ++pos;
        }
    }
    return tokens;
}

std::vector<uint8_t>
lz77Expand(const std::vector<Lz77Token> &tokens)
{
    std::vector<uint8_t> out;
    for (const auto &t : tokens) {
        if (!t.isMatch) {
            out.push_back(t.literal);
            continue;
        }
        if (t.distance == 0 || t.distance > out.size())
            throw std::invalid_argument("lz77Expand: bad distance");
        for (unsigned i = 0; i < t.length; ++i)
            out.push_back(out[out.size() - t.distance]);
    }
    return out;
}

} // namespace pce
