#include "png/huffman.hh"

#include <algorithm>
#include <stdexcept>

namespace pce {

std::vector<uint8_t>
packageMergeLengths(const std::vector<uint64_t> &freqs, unsigned max_length)
{
    const std::size_t n = freqs.size();
    std::vector<uint8_t> lengths(n, 0);

    // Active symbols, sorted by frequency.
    std::vector<std::size_t> active;
    for (std::size_t i = 0; i < n; ++i)
        if (freqs[i] > 0)
            active.push_back(i);

    if (active.empty())
        return lengths;
    if (active.size() == 1) {
        lengths[active[0]] = 1;
        return lengths;
    }
    if ((std::size_t(1) << max_length) < active.size())
        throw std::invalid_argument(
            "packageMergeLengths: alphabet too large for max_length");

    std::sort(active.begin(), active.end(),
              [&freqs](std::size_t a, std::size_t b) {
                  return freqs[a] < freqs[b];
              });

    // Package-merge: an item is either an original symbol or a package
    // of two items from the previous level. We track, per item, how many
    // times each symbol appears so final lengths are symbol use counts.
    struct Item
    {
        uint64_t weight;
        std::vector<uint32_t> counts;  // per active-symbol appearance count
    };

    const std::size_t m = active.size();
    auto make_leaf_list = [&]() {
        std::vector<Item> leaves(m);
        for (std::size_t i = 0; i < m; ++i) {
            leaves[i].weight = freqs[active[i]];
            leaves[i].counts.assign(m, 0);
            leaves[i].counts[i] = 1;
        }
        return leaves;
    };

    std::vector<Item> prev;
    for (unsigned level = 0; level < max_length; ++level) {
        // Merge leaves with packages from the previous level.
        std::vector<Item> merged = make_leaf_list();
        // Package pairs from prev.
        for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
            Item pkg;
            pkg.weight = prev[i].weight + prev[i + 1].weight;
            pkg.counts.assign(m, 0);
            for (std::size_t s = 0; s < m; ++s)
                pkg.counts[s] =
                    prev[i].counts[s] + prev[i + 1].counts[s];
            merged.push_back(std::move(pkg));
        }
        std::stable_sort(merged.begin(), merged.end(),
                         [](const Item &a, const Item &b) {
                             return a.weight < b.weight;
                         });
        prev = std::move(merged);
    }

    // Take the first 2m - 2 items; each symbol's appearance count is its
    // code length.
    const std::size_t take = 2 * m - 2;
    std::vector<uint32_t> symbol_lengths(m, 0);
    for (std::size_t i = 0; i < take && i < prev.size(); ++i)
        for (std::size_t s = 0; s < m; ++s)
            symbol_lengths[s] += prev[i].counts[s];

    for (std::size_t i = 0; i < m; ++i) {
        if (symbol_lengths[i] == 0 || symbol_lengths[i] > max_length)
            throw std::logic_error("packageMergeLengths: internal error");
        lengths[active[i]] = static_cast<uint8_t>(symbol_lengths[i]);
    }
    return lengths;
}

std::vector<uint32_t>
canonicalCodes(const std::vector<uint8_t> &lengths)
{
    constexpr unsigned kMaxLen = 15;
    std::vector<uint32_t> bl_count(kMaxLen + 1, 0);
    for (uint8_t len : lengths)
        if (len > 0)
            ++bl_count[len];

    std::vector<uint32_t> next_code(kMaxLen + 2, 0);
    uint32_t code = 0;
    for (unsigned bits = 1; bits <= kMaxLen; ++bits) {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }

    std::vector<uint32_t> codes(lengths.size(), 0);
    for (std::size_t i = 0; i < lengths.size(); ++i)
        if (lengths[i] > 0)
            codes[i] = next_code[lengths[i]]++;
    return codes;
}

uint32_t
reverseBits(uint32_t v, unsigned width)
{
    uint32_t r = 0;
    for (unsigned i = 0; i < width; ++i) {
        r = (r << 1) | (v & 1u);
        v >>= 1;
    }
    return r;
}

HuffmanDecoder::HuffmanDecoder(const std::vector<uint8_t> &lengths)
{
    levels_.assign(kMaxLen + 1, Level{});

    std::vector<uint32_t> bl_count(kMaxLen + 1, 0);
    for (uint8_t len : lengths) {
        if (len > kMaxLen)
            throw std::invalid_argument("HuffmanDecoder: length > 15");
        if (len > 0)
            ++bl_count[len];
    }

    // Kraft check: the code must not be over-subscribed.
    uint64_t kraft = 0;
    for (unsigned len = 1; len <= kMaxLen; ++len)
        kraft += static_cast<uint64_t>(bl_count[len])
                 << (kMaxLen - len);
    if (kraft > (uint64_t(1) << kMaxLen))
        throw std::invalid_argument("HuffmanDecoder: over-subscribed code");

    // First canonical code and symbol offset per length.
    uint32_t code = 0;
    uint32_t symbol_offset = 0;
    for (unsigned len = 1; len <= kMaxLen; ++len) {
        code = (code + bl_count[len - 1]) << 1;
        levels_[len].firstCode = code;
        levels_[len].count = bl_count[len];
        levels_[len].firstSymbol = symbol_offset;
        symbol_offset += bl_count[len];
    }

    // Symbols in canonical order: by length, then by symbol index.
    symbols_.resize(symbol_offset);
    std::vector<uint32_t> fill(kMaxLen + 1, 0);
    for (std::size_t i = 0; i < lengths.size(); ++i) {
        const uint8_t len = lengths[i];
        if (len == 0)
            continue;
        symbols_[levels_[len].firstSymbol + fill[len]++] =
            static_cast<uint16_t>(i);
    }
}

} // namespace pce
