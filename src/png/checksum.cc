#include "png/checksum.hh"

#include <array>

namespace pce {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t n = 0; n < 256; ++n) {
        uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

const std::array<uint32_t, 256> &
crcTable()
{
    static const auto table = makeCrcTable();
    return table;
}

constexpr uint32_t kAdlerMod = 65521;

} // namespace

void
Crc32::update(const uint8_t *data, std::size_t n)
{
    const auto &table = crcTable();
    for (std::size_t i = 0; i < n; ++i)
        state_ = table[(state_ ^ data[i]) & 0xffu] ^ (state_ >> 8);
}

uint32_t
crc32(const uint8_t *data, std::size_t n)
{
    Crc32 c;
    c.update(data, n);
    return c.value();
}

void
Adler32::update(const uint8_t *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        a_ = (a_ + data[i]) % kAdlerMod;
        b_ = (b_ + a_) % kAdlerMod;
    }
}

uint32_t
adler32(const uint8_t *data, std::size_t n)
{
    Adler32 a;
    a.update(data, n);
    return a.value();
}

} // namespace pce
