#include "core/adjust.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <typeinfo>

#include "bd/bd_codec.hh"
#include "color/srgb.hh"
#include "core/quadric.hh"

namespace pce {

namespace {

/** Quantize a candidate tile into @p codes and return its BD bit cost. */
std::size_t
tileBitsOf(const std::vector<Vec3> &adjusted, std::vector<uint8_t> &codes)
{
    codes.resize(adjusted.size() * 3);
    linearToSrgb8(adjusted.data(), adjusted.size(), codes.data());
    return bdTileBitsFromCodes(codes.data(), adjusted.size());
}

} // namespace

std::size_t
bdTileBits(const std::vector<Vec3> &pixels_linear)
{
    std::vector<uint8_t> codes;
    return tileBitsOf(pixels_linear, codes);
}

TileAdjuster::TileAdjuster(const DiscriminationModel &model,
                           ExtremaFn extrema, simd::SimdLevel level)
    : model_(model), extrema_(std::move(extrema)),
      simdLevel_(simd::effectiveSimdLevel(level))
{
    // The kernel flow hardcodes the analytic model's datapath; engage
    // it only when the model *is* exactly that type (a subclass could
    // override the semi-axis evaluation) and the extrema backend is the
    // default Eq. 11-13 datapath the kernels implement.
    if (!extrema_ && typeid(model) == typeid(AnalyticDiscriminationModel)) {
        analyticParams_ =
            static_cast<const AnalyticDiscriminationModel &>(model)
                .params();
        kernels_ = &simd::tileKernels(level);
    }
}

void
TileAdjuster::computeEllipsoids(TileScratch &scratch) const
{
    const std::size_t n = scratch.pixels.size();
    scratch.ellipsoids.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        scratch.ellipsoids[i] = model_.ellipsoidFor(
            scratch.pixels[i].clamped(0.0, 1.0), scratch.ecc[i]);
}

TileAdjuster::AxisOutcome
TileAdjuster::moveAlongAxis(const std::vector<Vec3> &pixels,
                            const std::vector<ExtremaPair> &extrema,
                            int axis,
                            std::vector<Vec3> &adjusted) const
{
    const std::size_t n = pixels.size();
    adjusted.resize(n);

    AxisOutcome out;
    if (n == 0)
        return out;

    // Step 2 (Fig. 7): HL (highest of the lows) and LH (lowest of the
    // highs); the CAU computes these with two reduction trees (Sec. 4.2).
    double hl = -1e300;
    double lh = 1e300;
    for (const auto &ex : extrema) {
        hl = std::max(hl, ex.low[axis]);
        lh = std::min(lh, ex.high[axis]);
    }
    out.hlPlane = hl;
    out.lhPlane = lh;
    out.adjustCase = hl > lh ? AdjustCase::C1 : AdjustCase::C2;

    // Step 3: move colors along the extrema vectors.
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 &p = pixels[i];
        double target;
        if (out.adjustCase == AdjustCase::C2) {
            // Common plane: collapse the channel entirely (Fig. 6b).
            target = 0.5 * (hl + lh);
        } else {
            // No common plane: clamp into [LH, HL] (Fig. 6a).
            target = std::clamp(p[axis], lh, hl);
        }

        const Vec3 v = extrema[i].extremaVector();
        if (v[axis] == 0.0) {
            adjusted[i] = p;  // degenerate: no mobility along this axis
            continue;
        }
        double t = (target - p[axis]) / v[axis];
        // The target lies between the pixel's own extrema, so |t|<=0.5
        // keeps the color on the center chord, inside the ellipsoid.
        // Division-free fast path: a strictly in-gamut destination
        // means t is inside every per-coordinate clamp interval.
        const Vec3 cand = p + v * t;
        if (cand.x > 0.0 && cand.x < 1.0 && cand.y > 0.0 &&
            cand.y < 1.0 && cand.z > 0.0 && cand.z < 1.0) {
            adjusted[i] = cand;
            continue;
        }
        const double t_gamut = clampMovementToGamut(p, v, t);
        if (t_gamut != t)
            ++out.gamutClampedPixels;
        adjusted[i] = p + v * t_gamut;
    }
    return out;
}

TileOutcome
TileAdjuster::adjustTile(TileScratch &scratch) const
{
    if (scratch.pixels.size() != scratch.ecc.size())
        throw std::invalid_argument("adjustTile: size mismatch");
    return kernels_ ? adjustTileKernels(scratch)
                    : adjustTileLegacy(scratch);
}

TileOutcome
TileAdjuster::adjustTileSoA(TileScratch &scratch) const
{
    if (!kernels_)
        throw std::logic_error(
            "adjustTileSoA: kernel flow not engaged (see "
            "usingSimdKernels)");
    simd::TileSoA &soa = scratch.soa;
    const std::size_t n = soa.n;

    kernels_->ellipsoids(soa, analyticParams_);
    kernels_->extremaBoth(soa);

    TileOutcome out;
    int clamped[2] = {0, 0};
    const int axes[2] = {0, 2};
    for (int pass = 0; pass < 2; ++pass) {
        const int axis = axes[pass];
        AdjustCase tile_case = AdjustCase::C2;
        if (n > 0) {
            // Step 2 (Fig. 7): HL / LH reduction over the extrema's
            // axis components, in the same sequential order as the
            // legacy flow.
            const double *low = soa.lane(
                axis == 0 ? simd::kRedLowX : simd::kBlueLowZ);
            const double *high = soa.lane(
                axis == 0 ? simd::kRedHighX : simd::kBlueHighZ);
            double hl = -1e300;
            double lh = 1e300;
            for (std::size_t i = 0; i < n; ++i) {
                hl = std::max(hl, low[i]);
                lh = std::min(lh, high[i]);
            }
            tile_case = hl > lh ? AdjustCase::C1 : AdjustCase::C2;
            clamped[pass] = kernels_->moveAxis(
                soa, axis, tile_case == AdjustCase::C2,
                0.5 * (hl + lh), lh, hl);
        }
        if (pass == 0)
            out.caseRed = tile_case;
        else
            out.caseBlue = tile_case;
    }

    out.bitsRed = kernels_->tileCost(soa, 0);
    out.bitsBlue = kernels_->tileCost(soa, 2);

    const bool pick_red = out.bitsRed < out.bitsBlue;
    out.chosenAxis = pick_red ? 0 : 2;
    out.chosenCase = pick_red ? out.caseRed : out.caseBlue;
    out.gamutClampedPixels = clamped[pick_red ? 0 : 1];
    return out;
}

TileOutcome
TileAdjuster::adjustTileKernels(TileScratch &scratch) const
{
    const std::size_t n = scratch.pixels.size();
    simd::TileSoA &soa = scratch.soa;
    soa.resize(n);

    // Planar split of the gathered tile; frame-pipeline callers gather
    // into the lanes directly (adjustTileSoA) and skip this.
    double *px = soa.lane(simd::kPx);
    double *py = soa.lane(simd::kPy);
    double *pz = soa.lane(simd::kPz);
    double *ecc = soa.lane(simd::kEcc);
    for (std::size_t i = 0; i < n; ++i) {
        px[i] = scratch.pixels[i].x;
        py[i] = scratch.pixels[i].y;
        pz[i] = scratch.pixels[i].z;
        ecc[i] = scratch.ecc[i];
    }

    TileOutcome out = adjustTileSoA(scratch);

    const bool pick_red = out.chosenAxis == 0;
    const double *ox =
        soa.lane(pick_red ? simd::kOutRedX : simd::kOutBlueX);
    const double *oy =
        soa.lane(pick_red ? simd::kOutRedY : simd::kOutBlueY);
    const double *oz =
        soa.lane(pick_red ? simd::kOutRedZ : simd::kOutBlueZ);
    scratch.adjustedChosen.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        scratch.adjustedChosen[i] = Vec3(ox[i], oy[i], oz[i]);
    out.adjusted = &scratch.adjustedChosen;
    return out;
}

TileOutcome
TileAdjuster::adjustTileLegacy(TileScratch &scratch) const
{
    const std::size_t n = scratch.pixels.size();

    // Step 1 (Fig. 7): per-pixel ellipsoids, computed once and shared
    // by both axis passes; extrema for both axes from one quadric.
    computeEllipsoids(scratch);
    scratch.extremaRed.resize(n);
    scratch.extremaBlue.resize(n);
    if (extrema_) {
        for (std::size_t i = 0; i < n; ++i) {
            scratch.extremaRed[i] = extrema_(scratch.ellipsoids[i], 0);
            scratch.extremaBlue[i] = extrema_(scratch.ellipsoids[i], 2);
        }
    } else {
        for (std::size_t i = 0; i < n; ++i)
            extremaBothAxes(scratch.ellipsoids[i],
                            scratch.extremaRed[i],
                            scratch.extremaBlue[i]);
    }

    const AxisOutcome red = moveAlongAxis(
        scratch.pixels, scratch.extremaRed, 0, scratch.adjustedRed);
    const AxisOutcome blue = moveAlongAxis(
        scratch.pixels, scratch.extremaBlue, 2, scratch.adjustedBlue);

    TileOutcome out;
    out.caseRed = red.adjustCase;
    out.caseBlue = blue.adjustCase;
    out.bitsRed = tileBitsOf(scratch.adjustedRed, scratch.codes);
    out.bitsBlue = tileBitsOf(scratch.adjustedBlue, scratch.codes);

    if (out.bitsRed < out.bitsBlue) {
        out.adjusted = &scratch.adjustedRed;
        out.chosenAxis = 0;
        out.chosenCase = red.adjustCase;
        out.gamutClampedPixels = red.gamutClampedPixels;
    } else {
        out.adjusted = &scratch.adjustedBlue;
        out.chosenAxis = 2;
        out.chosenCase = blue.adjustCase;
        out.gamutClampedPixels = blue.gamutClampedPixels;
    }
    return out;
}

AxisAdjustment
TileAdjuster::adjustAlongAxis(const std::vector<Vec3> &pixels,
                              const std::vector<double> &ecc_deg,
                              int axis) const
{
    if (pixels.size() != ecc_deg.size())
        throw std::invalid_argument("adjustAlongAxis: size mismatch");
    if (axis != 0 && axis != 2)
        throw std::invalid_argument(
            "adjustAlongAxis: axis must be Red (0) or Blue (2)");

    const std::size_t n = pixels.size();
    AxisAdjustment out;
    if (n == 0)
        return out;

    TileScratch scratch;
    scratch.pixels = pixels;
    scratch.ecc = ecc_deg;
    computeEllipsoids(scratch);

    auto &extrema =
        axis == 0 ? scratch.extremaRed : scratch.extremaBlue;
    extrema.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        extrema[i] = extrema_
                         ? extrema_(scratch.ellipsoids[i], axis)
                         : extremaAlongAxis(scratch.ellipsoids[i], axis);

    const AxisOutcome o =
        moveAlongAxis(scratch.pixels, extrema, axis, out.adjusted);
    out.adjustCase = o.adjustCase;
    out.hlPlane = o.hlPlane;
    out.lhPlane = o.lhPlane;
    out.gamutClampedPixels = o.gamutClampedPixels;
    return out;
}

TileAdjustment
TileAdjuster::adjustTile(const std::vector<Vec3> &pixels,
                         const std::vector<double> &ecc_deg) const
{
    TileScratch scratch;
    scratch.pixels = pixels;
    scratch.ecc = ecc_deg;
    const TileOutcome o = adjustTile(scratch);

    TileAdjustment out;
    out.adjusted = *o.adjusted;
    out.chosenAxis = o.chosenAxis;
    out.chosenCase = o.chosenCase;
    out.caseRed = o.caseRed;
    out.caseBlue = o.caseBlue;
    out.bitsRed = o.bitsRed;
    out.bitsBlue = o.bitsBlue;
    out.gamutClampedPixels = o.gamutClampedPixels;
    return out;
}

} // namespace pce
