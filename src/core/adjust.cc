#include "core/adjust.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bd/bd_codec.hh"
#include "color/srgb.hh"
#include "core/quadric.hh"

namespace pce {

namespace {

/**
 * Clamp the movement parameter @p t of the segment p(t) = origin +
 * t * dir so every coordinate stays within [0, 1]. Assumes origin is in
 * gamut (true for rendered colors). Returns the clamped t.
 */
double
clampToGamut(const Vec3 &origin, const Vec3 &dir, double t)
{
    for (std::size_t i = 0; i < 3; ++i) {
        const double d = dir[i];
        if (d == 0.0)
            continue;
        // origin[i] + t*d in [0,1]  =>  t in the interval below.
        const double t_at_0 = (0.0 - origin[i]) / d;
        const double t_at_1 = (1.0 - origin[i]) / d;
        const double t_min = std::min(t_at_0, t_at_1);
        const double t_max = std::max(t_at_0, t_at_1);
        t = std::clamp(t, t_min, t_max);
    }
    return t;
}

} // namespace

std::size_t
bdTileBits(const std::vector<Vec3> &pixels_linear)
{
    std::size_t bits = 0;
    for (int c = 0; c < 3; ++c) {
        uint8_t lo = 255;
        uint8_t hi = 0;
        for (const Vec3 &p : pixels_linear) {
            const uint8_t v = linearToSrgb8(p[c]);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        bits += 4 + 8 +
                pixels_linear.size() * bdDeltaWidth(lo, hi);
    }
    return bits;
}

AxisAdjustment
TileAdjuster::adjustAlongAxis(const std::vector<Vec3> &pixels,
                              const std::vector<double> &ecc_deg,
                              int axis) const
{
    if (pixels.size() != ecc_deg.size())
        throw std::invalid_argument("adjustAlongAxis: size mismatch");
    if (axis != 0 && axis != 2)
        throw std::invalid_argument(
            "adjustAlongAxis: axis must be Red (0) or Blue (2)");

    const std::size_t n = pixels.size();
    AxisAdjustment out;
    out.adjusted = pixels;
    if (n == 0)
        return out;

    // Step 1 (Fig. 7): per-pixel ellipsoids and their extrema.
    std::vector<ExtremaPair> extrema(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Ellipsoid e =
            model_.ellipsoidFor(pixels[i].clamped(0.0, 1.0), ecc_deg[i]);
        extrema[i] =
            extrema_ ? extrema_(e, axis) : extremaAlongAxis(e, axis);
    }

    // Step 2: HL (highest of the lows) and LH (lowest of the highs);
    // the CAU computes these with two reduction trees (Sec. 4.2).
    double hl = -1e300;
    double lh = 1e300;
    for (const auto &ex : extrema) {
        hl = std::max(hl, ex.low[axis]);
        lh = std::min(lh, ex.high[axis]);
    }
    out.hlPlane = hl;
    out.lhPlane = lh;
    out.adjustCase = hl > lh ? AdjustCase::C1 : AdjustCase::C2;

    // Step 3: move colors along the extrema vectors.
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 &p = pixels[i];
        double target;
        if (out.adjustCase == AdjustCase::C2) {
            // Common plane: collapse the channel entirely (Fig. 6b).
            target = 0.5 * (hl + lh);
        } else {
            // No common plane: clamp into [LH, HL] (Fig. 6a).
            target = std::clamp(p[axis], lh, hl);
        }

        const Vec3 v = extrema[i].extremaVector();
        if (v[axis] == 0.0)
            continue;  // degenerate: no mobility along this axis
        double t = (target - p[axis]) / v[axis];
        // The target lies between the pixel's own extrema, so |t|<=0.5
        // keeps the color on the center chord, inside the ellipsoid.
        const double t_gamut = clampToGamut(p, v, t);
        if (t_gamut != t)
            ++out.gamutClampedPixels;
        out.adjusted[i] = p + v * t_gamut;
    }
    return out;
}

TileAdjustment
TileAdjuster::adjustTile(const std::vector<Vec3> &pixels,
                         const std::vector<double> &ecc_deg) const
{
    // Fig. 7: run the B-channel and R-channel optimizations and pick
    // the one whose sRGB/BD encoding is smaller.
    const AxisAdjustment red = adjustAlongAxis(pixels, ecc_deg, 0);
    const AxisAdjustment blue = adjustAlongAxis(pixels, ecc_deg, 2);

    TileAdjustment out;
    out.caseRed = red.adjustCase;
    out.caseBlue = blue.adjustCase;
    out.bitsRed = bdTileBits(red.adjusted);
    out.bitsBlue = bdTileBits(blue.adjusted);

    if (out.bitsRed < out.bitsBlue) {
        out.adjusted = red.adjusted;
        out.chosenAxis = 0;
        out.chosenCase = red.adjustCase;
        out.gamutClampedPixels = red.gamutClampedPixels;
    } else {
        out.adjusted = blue.adjusted;
        out.chosenAxis = 2;
        out.chosenCase = blue.adjustCase;
        out.gamutClampedPixels = blue.gamutClampedPixels;
    }
    return out;
}

} // namespace pce
