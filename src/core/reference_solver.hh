/**
 * @file
 * Iterative reference solver for the relaxed tile objective (Sec. 3.2-3.3).
 *
 * The paper notes that the pre-relaxation problem needs iterative solvers
 * ("popular solvers in Matlab spend hours"), motivating the analytical
 * solution. This module provides a projected-subgradient solver for the
 * *relaxed convex* objective (Eq. 8c: minimize max-min of one channel
 * subject to every color staying in its ellipsoid) over the full 3-D
 * feasible set. It exists purely as a validation oracle: property tests
 * assert the analytical solution's spread is never worse than what the
 * iterative solver reaches, i.e. the closed form is optimal.
 */

#ifndef PCE_CORE_REFERENCE_SOLVER_HH
#define PCE_CORE_REFERENCE_SOLVER_HH

#include <vector>

#include "common/vec3.hh"
#include "perception/discrimination.hh"

namespace pce {

/** Result of the iterative minimization. */
struct SolverResult
{
    /** Final colors in linear RGB. */
    std::vector<Vec3> colors;
    /** Final channel spread max-min along the optimization axis. */
    double spread = 0.0;
    /** Iterations executed. */
    int iterations = 0;
};

/** Spread (max - min) of one RGB channel over a color set. */
double channelSpread(const std::vector<Vec3> &colors, int axis);

/**
 * Projected subgradient descent on Eq. 8c.
 *
 * @param pixels     Original linear-RGB colors (the ellipsoid centers).
 * @param ellipsoids Per-pixel DKL discrimination ellipsoids.
 * @param axis       Channel to minimize (0 = R, 2 = B).
 * @param iterations Subgradient steps.
 * @param step0      Initial step size (decays as step0 / sqrt(k)).
 *
 * Projection uses radial scaling in the ellipsoid-normalized metric,
 * which maps any point to a feasible one (adequate for an oracle).
 */
SolverResult minimizeSpreadSubgradient(
    const std::vector<Vec3> &pixels,
    const std::vector<Ellipsoid> &ellipsoids, int axis,
    int iterations = 400, double step0 = 0.02);

} // namespace pce

#endif // PCE_CORE_REFERENCE_SOLVER_HH
