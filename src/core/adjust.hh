/**
 * @file
 * Per-tile perceptual color adjustment (paper Sec. 3.3-3.4, Fig. 6-7).
 *
 * Given a tile of linear-RGB pixels and their discrimination ellipsoids,
 * the adjuster shrinks the spread of one RGB channel (Red or Blue) by
 * moving each color along its ellipsoid's extrema vector:
 *
 *  - Per pixel, compute the extrema (H_i, L_i) of its ellipsoid along
 *    the optimization axis.
 *  - Reduce: HL = max_i L_i[axis] (highest of the lows) and
 *            LH = min_i H_i[axis] (lowest of the highs).
 *  - Case 1 (HL > LH, Fig. 6a): no plane crosses every ellipsoid; clamp
 *    each pixel's channel into [LH, HL] (colors above HL move down to
 *    HL, colors below LH move up to LH), the minimal-movement policy
 *    achieving the optimal spread HL - LH.
 *  - Case 2 (HL <= LH, Fig. 6b): every plane between HL and LH crosses
 *    all ellipsoids; move every color to the average plane
 *    (HL + LH) / 2, collapsing the channel spread to zero.
 *
 * Movement is along the extrema vector so the adjusted color stays
 * inside its ellipsoid (the target channel value lies between the two
 * extrema, hence on the center chord). A final gamut step restricts the
 * movement parameter so the color also stays inside the RGB unit cube —
 * the perceptual constraint (Eq. 7d) is never traded for compression.
 *
 * Both axes are tried and the tile variant with the smaller BD bit cost
 * (after sRGB quantization) is kept, exactly as in Fig. 7.
 *
 * Two API layers expose the algorithm:
 *
 *  - The scratch-based flow (TileScratch + adjustTile(TileScratch &))
 *    is the production hot path: per-pixel ellipsoids are computed once
 *    and shared by the red- and blue-axis passes, extrema for both axes
 *    come from one quadric transform, sRGB quantization runs through
 *    the LUT exactly once per candidate, and every buffer lives in the
 *    caller-owned scratch so a worker thread encodes an entire frame
 *    without allocating.
 *  - The std::vector convenience overloads below are kept for tests,
 *    benches, and exploratory code; they wrap the scratch flow and
 *    produce bit-identical results.
 */

#ifndef PCE_CORE_ADJUST_HH
#define PCE_CORE_ADJUST_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/vec3.hh"
#include "core/quadric.hh"
#include "perception/discrimination.hh"
#include "simd/tile_kernels.hh"
#include "simd/tile_soa.hh"

namespace pce {

/**
 * Pluggable extrema backend. The default is the double-precision
 * Eq. 11-13 datapath (extremaAlongAxis); the hardware-fidelity ablation
 * substitutes the fixed-point datapath of src/hw/fixed_datapath.hh to
 * measure end-to-end effects of datapath width.
 */
using ExtremaFn = std::function<ExtremaPair(const Ellipsoid &, int)>;

/** Which Fig. 6 case a tile fell into along one axis. */
enum class AdjustCase
{
    C1,  ///< HL > LH: no common plane (Fig. 6a)
    C2,  ///< HL <= LH: common plane exists, channel collapses (Fig. 6b)
};

/**
 * Reusable per-worker scratch of the zero-allocation tile flow. The
 * caller fills `pixels` and `ecc` (the SoA gather of one tile) and
 * passes the scratch to TileAdjuster::adjustTile; all other buffers are
 * intermediate stages that grow to the tile size once and are reused
 * for every subsequent tile.
 */
struct TileScratch
{
    /** Gathered linear-RGB tile pixels (caller-filled). */
    std::vector<Vec3> pixels;
    /** Per-pixel eccentricities, same length (caller-filled). */
    std::vector<double> ecc;

    /** Per-pixel ellipsoids, shared by both axis passes. */
    std::vector<Ellipsoid> ellipsoids;
    /** Per-pixel extrema along the Red / Blue axes. */
    std::vector<ExtremaPair> extremaRed;
    std::vector<ExtremaPair> extremaBlue;
    /** The two candidate adjusted tiles. */
    std::vector<Vec3> adjustedRed;
    std::vector<Vec3> adjustedBlue;
    /** Interleaved sRGB codes of the candidate being costed. */
    std::vector<uint8_t> codes;

    /** Planar lanes of the SIMD kernel flow (src/simd). */
    simd::TileSoA soa;
    /** Chosen variant of the kernel flow, interleaved for callers. */
    std::vector<Vec3> adjustedChosen;
};

/** Outcome of adjusting one tile along one axis. */
struct AxisAdjustment
{
    std::vector<Vec3> adjusted;  ///< linear RGB, same order as input
    AdjustCase adjustCase = AdjustCase::C2;
    double hlPlane = 0.0;  ///< HL value along the axis
    double lhPlane = 0.0;  ///< LH value along the axis
    int gamutClampedPixels = 0;  ///< movements shortened by the gamut
};

/** Outcome of the full per-tile optimization (both axes, best kept). */
struct TileAdjustment
{
    std::vector<Vec3> adjusted;
    int chosenAxis = 2;          ///< 0 = Red, 2 = Blue
    AdjustCase chosenCase = AdjustCase::C2;
    AdjustCase caseRed = AdjustCase::C2;
    AdjustCase caseBlue = AdjustCase::C2;
    std::size_t bitsRed = 0;     ///< BD bits of the red-axis variant
    std::size_t bitsBlue = 0;    ///< BD bits of the blue-axis variant
    int gamutClampedPixels = 0;
};

/**
 * Tile outcome of the scratch-based flow. The adjusted pixels are not
 * copied: `adjusted` points into the scratch (adjustedRed or
 * adjustedBlue) and is valid until the scratch is reused.
 */
struct TileOutcome
{
    int chosenAxis = 2;          ///< 0 = Red, 2 = Blue
    AdjustCase chosenCase = AdjustCase::C2;
    AdjustCase caseRed = AdjustCase::C2;
    AdjustCase caseBlue = AdjustCase::C2;
    std::size_t bitsRed = 0;
    std::size_t bitsBlue = 0;
    int gamutClampedPixels = 0;
    const std::vector<Vec3> *adjusted = nullptr;
};

/** The color adjustment algorithm of Sec. 3.4. */
class TileAdjuster
{
  public:
    /**
     * @param model Discrimination model used to derive per-pixel
     *              ellipsoids. The reference must outlive the adjuster.
     * @param extrema Extrema backend; empty uses extremaAlongAxis.
     * @param level SIMD dispatch level of the scratch-based tile flow;
     *              defaults to CPUID detection with the FOVE_SIMD env
     *              override (see src/simd/tile_kernels.hh). The kernel
     *              flow only engages when @p model is exactly the
     *              analytic model and no extrema override is set — any
     *              other configuration runs the legacy scalar flow,
     *              whose results every kernel level reproduces bit for
     *              bit.
     */
    explicit TileAdjuster(const DiscriminationModel &model,
                          ExtremaFn extrema = {},
                          simd::SimdLevel level =
                              simd::activeSimdLevel());

    /**
     * Effective dispatch level of the kernel table (the constructor's
     * request clamped to what the CPU/build can run). Only meaningful
     * for the scratch flow when usingSimdKernels() is true.
     */
    simd::SimdLevel simdLevel() const { return simdLevel_; }

    /** True when the planar kernel flow (src/simd) is engaged. */
    bool usingSimdKernels() const { return kernels_ != nullptr; }

    /**
     * The full Fig. 7 tile flow on a caller-owned scratch: ellipsoids
     * once per pixel, extrema for both axes from one quadric, sRGB
     * quantization through the LUT, smaller-BD-cost variant chosen.
     * Zero allocation once the scratch has warmed to the tile size.
     *
     * @param scratch pixels/ecc filled by the caller; other members are
     *                working storage.
     */
    TileOutcome adjustTile(TileScratch &scratch) const;

    /**
     * Kernel-flow entry for callers that gather straight into the
     * planar lanes: scratch.soa must be resize(n)'d with lanes
     * kPx..kPz / kEcc filled. Skips the Vec3 interleave of the chosen
     * variant — TileOutcome::adjusted stays null and the result lives
     * in the soa's kOutRed / kOutBlue lane groups of the chosen axis.
     * Only valid when usingSimdKernels(); the frame pipeline uses this
     * to avoid one AoS->SoA round trip per tile.
     */
    TileOutcome adjustTileSoA(TileScratch &scratch) const;

    /**
     * Adjust a tile along a single axis (exposed for tests and the
     * ablation benches). Wraps the scratch flow; bit-identical to it.
     *
     * @param pixels Linear-RGB tile pixels.
     * @param ecc_deg Per-pixel eccentricities (same length).
     * @param axis 0 = Red or 2 = Blue.
     */
    AxisAdjustment adjustAlongAxis(const std::vector<Vec3> &pixels,
                                   const std::vector<double> &ecc_deg,
                                   int axis) const;

    /**
     * Convenience overload of the full tile flow that copies the
     * chosen variant out of an internal scratch.
     */
    TileAdjustment adjustTile(const std::vector<Vec3> &pixels,
                              const std::vector<double> &ecc_deg) const;

    const DiscriminationModel &model() const { return model_; }

  private:
    /** Per-axis outcome without pixel storage. */
    struct AxisOutcome
    {
        AdjustCase adjustCase = AdjustCase::C2;
        double hlPlane = 0.0;
        double lhPlane = 0.0;
        int gamutClampedPixels = 0;
    };

    /** Fill scratch.ellipsoids from scratch.pixels / scratch.ecc. */
    void computeEllipsoids(TileScratch &scratch) const;

    /**
     * Steps 2-3 of Fig. 7 along one axis: reduce HL/LH over @p extrema
     * and move every pixel, writing the result to @p adjusted.
     */
    AxisOutcome moveAlongAxis(const std::vector<Vec3> &pixels,
                              const std::vector<ExtremaPair> &extrema,
                              int axis,
                              std::vector<Vec3> &adjusted) const;

    /** The pre-SIMD Vec3/AoS tile flow (any model, any extrema fn). */
    TileOutcome adjustTileLegacy(TileScratch &scratch) const;

    /** The planar kernel flow (analytic model, dispatch level). */
    TileOutcome adjustTileKernels(TileScratch &scratch) const;

    const DiscriminationModel &model_;
    ExtremaFn extrema_;
    /** Params snapshot backing the kernel flow (analytic model only). */
    AnalyticModelParams analyticParams_;
    const simd::TileKernels *kernels_ = nullptr;
    simd::SimdLevel simdLevel_ = simd::SimdLevel::Scalar;
};

/**
 * BD bit cost of a tile of linear-RGB pixels after sRGB quantization:
 * per channel, meta(4) + base(8) + N * ceil(log2(range+1)) bits.
 * Shared by the adjuster's axis selection and the pipeline stats.
 * Convenience wrapper over bdTileBitsFromCodes (src/bd).
 */
std::size_t bdTileBits(const std::vector<Vec3> &pixels_linear);

/**
 * Clamp the movement parameter @p t of the segment p(t) = origin +
 * t * dir so every coordinate stays within [0, 1]. Assumes origin is in
 * gamut (true for rendered colors). Returns the clamped t.
 *
 * One definition shared by the legacy tile flow and the scalar kernel
 * reference (src/simd) — the bit-identity contract between them is
 * anchored here, and the AVX2 kernel mirrors this exact operation
 * sequence lanewise.
 */
inline double
clampMovementToGamut(const Vec3 &origin, const Vec3 &dir, double t)
{
    for (std::size_t i = 0; i < 3; ++i) {
        const double d = dir[i];
        if (d == 0.0)
            continue;
        // origin[i] + t*d in [0,1]  =>  t in the interval below.
        const double t_at_0 = (0.0 - origin[i]) / d;
        const double t_at_1 = (1.0 - origin[i]) / d;
        const double t_min = std::min(t_at_0, t_at_1);
        const double t_max = std::max(t_at_0, t_at_1);
        t = std::clamp(t, t_min, t_max);
    }
    return t;
}

} // namespace pce

#endif // PCE_CORE_ADJUST_HH
