#include "core/quadric.hh"

#include <cmath>
#include <stdexcept>

#include "color/dkl.hh"

namespace pce {

Quadric
Quadric::fromDklEllipsoid(const Ellipsoid &e)
{
    // d = M p; (d - k)^T S (d - k) = 1 with S = diag(1/s_i^2)
    // => p^T (M^T S M) p - 2 k^T S M p + (k^T S k - 1) = 0.
    const Mat3 &m = rgb2dklMatrix();
    const Vec3 s_inv2(1.0 / (e.semiAxes.x * e.semiAxes.x),
                      1.0 / (e.semiAxes.y * e.semiAxes.y),
                      1.0 / (e.semiAxes.z * e.semiAxes.z));
    const Mat3 s = Mat3::diagonal(s_inv2);

    Quadric q;
    q.q3 = m.transpose() * s * m;
    const Vec3 k_s = e.centerDkl.cwiseMul(s_inv2);  // S k
    // lin = -2 M^T S k
    q.lin = (m.transpose() * k_s) * -2.0;
    q.c = e.centerDkl.dot(k_s) - 1.0;
    return q;
}

double
Quadric::value(const Vec3 &rgb) const
{
    return rgb.dot(q3 * rgb) + lin.dot(rgb) + c;
}

std::array<double, 9>
Quadric::paperCoefficients() const
{
    if (c == 0.0)
        throw std::domain_error(
            "Quadric::paperCoefficients: zero constant term");
    const double ic = 1.0 / c;
    // Eq. 9 layout: A x^2 + B y^2 + C z^2 + D x + E y + F z
    //             + G xy + H yz + I zx + 1 = 0.
    return {
        q3(0, 0) * ic,                 // A
        q3(1, 1) * ic,                 // B
        q3(2, 2) * ic,                 // C
        lin.x * ic,                    // D
        lin.y * ic,                    // E
        lin.z * ic,                    // F
        (q3(0, 1) + q3(1, 0)) * ic,    // G
        (q3(1, 2) + q3(2, 1)) * ic,    // H
        (q3(2, 0) + q3(0, 2)) * ic,    // I
    };
}

ExtremaFrame
buildExtremaFrame(const Ellipsoid &e)
{
    const Mat3 &m = rgb2dklMatrix();
    ExtremaFrame f;
    f.sInv2 = Vec3(1.0 / (e.semiAxes.x * e.semiAxes.x),
                   1.0 / (e.semiAxes.y * e.semiAxes.y),
                   1.0 / (e.semiAxes.z * e.semiAxes.z));
    // q3 = M^T S M is symmetric: build its 6 unique entries directly
    // (q3_ij = sum_k m_ki * sInv2_k * m_kj) instead of two full 3x3
    // matrix products — this runs once per pixel per frame.
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = i; j < 3; ++j) {
            const double v = m(0, i) * f.sInv2.x * m(0, j) +
                             m(1, i) * f.sInv2.y * m(1, j) +
                             m(2, i) * f.sInv2.z * m(2, j);
            f.q3(i, j) = v;
            f.q3(j, i) = v;
        }
    }
    f.rgbCenter = dkl2rgbMatrix() * e.centerDkl;
    return f;
}

ExtremaPair
extremaFromFrame(const ExtremaFrame &f, int axis)
{
    // Eq. 11: setting the partial derivatives along the two other axes
    // to zero yields two planes; their normals are the corresponding
    // rows of the gradient (2 Q3 p + lin). Eq. 12: the extrema vector
    // is the cross product of the two plane normals. Any uniform
    // positive scale of the quadric cancels in the direction, so the
    // unnormalized Q3 rows work exactly like the paper's A..I
    // coefficients (the factor 2 of the gradient drops out too).
    const int a1 = (axis + 1) % 3;
    const int a2 = (axis + 2) % 3;
    const Vec3 v = f.q3.row(a1).cross(f.q3.row(a2));

    // Eq. 13: intersect the line through the DKL center along direction
    // (M v) with the DKL ellipsoid.
    const Vec3 x = rgb2dklMatrix() * v;
    const double denom = std::sqrt(x.x * x.x * f.sInv2.x +
                                   x.y * x.y * f.sInv2.y +
                                   x.z * x.z * f.sInv2.z);
    if (denom == 0.0)
        throw std::domain_error("extremaAlongAxis: degenerate ellipsoid");

    const Vec3 step = dkl2rgbMatrix() * (x * (1.0 / denom));
    const Vec3 p_plus = f.rgbCenter + step;
    const Vec3 p_minus = f.rgbCenter - step;

    ExtremaPair pair;
    if (p_plus[axis] >= p_minus[axis]) {
        pair.high = p_plus;
        pair.low = p_minus;
    } else {
        pair.high = p_minus;
        pair.low = p_plus;
    }
    return pair;
}

ExtremaPair
extremaAlongAxis(const Ellipsoid &e, int axis)
{
    if (axis != 0 && axis != 1 && axis != 2)
        throw std::invalid_argument("extremaAlongAxis: bad axis");
    return extremaFromFrame(buildExtremaFrame(e), axis);
}

void
extremaBothAxes(const Ellipsoid &e, ExtremaPair &red, ExtremaPair &blue)
{
    const ExtremaFrame f = buildExtremaFrame(e);
    red = extremaFromFrame(f, 0);
    blue = extremaFromFrame(f, 2);
}

ExtremaPair
extremaAlongAxisLagrange(const Ellipsoid &e, int axis)
{
    if (axis != 0 && axis != 1 && axis != 2)
        throw std::invalid_argument("extremaAlongAxisLagrange: bad axis");

    // Maximize g . d over (d - k)^T S (d - k) = 1 where the objective in
    // RGB is e_axis . (M^-1 d), i.e. g = row_axis(M^-1). The support
    // point is d* = k +/- (Sigma g) / sqrt(g^T Sigma g), Sigma = S^-1.
    const Mat3 &inv = dkl2rgbMatrix();
    const Vec3 g = inv.row(axis);
    const Vec3 sigma(e.semiAxes.x * e.semiAxes.x,
                     e.semiAxes.y * e.semiAxes.y,
                     e.semiAxes.z * e.semiAxes.z);
    const Vec3 sg = sigma.cwiseMul(g);
    const double denom = std::sqrt(g.dot(sg));
    if (denom == 0.0)
        throw std::domain_error(
            "extremaAlongAxisLagrange: degenerate ellipsoid");

    const Vec3 d_high = e.centerDkl + sg / denom;
    const Vec3 d_low = e.centerDkl - sg / denom;

    ExtremaPair pair;
    pair.high = inv * d_high;
    pair.low = inv * d_low;
    return pair;
}

} // namespace pce
