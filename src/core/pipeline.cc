#include "core/pipeline.hh"

#include <algorithm>
#include <stdexcept>

namespace pce {

namespace {

/**
 * Tiles claimed per scheduler grab. Small enough that the pool
 * rebalances around the nearly-free foveal region, large enough that
 * the atomic counter is off the critical path.
 */
constexpr std::size_t kTileGrain = 8;

} // namespace

PipelineStats &
PipelineStats::operator+=(const PipelineStats &o)
{
    totalTiles += o.totalTiles;
    fovealBypassTiles += o.fovealBypassTiles;
    c1Tiles += o.c1Tiles;
    c2Tiles += o.c2Tiles;
    redAxisTiles += o.redAxisTiles;
    blueAxisTiles += o.blueAxisTiles;
    gamutClampedPixels += o.gamutClampedPixels;
    return *this;
}

PerceptualEncoder::PerceptualEncoder(const DiscriminationModel &model,
                                     const PipelineParams &params)
    : model_(model), params_(params),
      adjuster_(model, params.extremaFn), codec_(params.tileSize)
{
    if (params_.threads < 1)
        throw std::invalid_argument("PerceptualEncoder: threads < 1");
    if (params_.threads > 1)
        pool_ = std::make_unique<ThreadPool>(params_.threads - 1);
}

ImageF
PerceptualEncoder::adjustFrame(const ImageF &frame,
                               const EccentricityMap &ecc,
                               PipelineStats *stats_out) const
{
    if (frame.width() != ecc.width() || frame.height() != ecc.height())
        throw std::invalid_argument(
            "PerceptualEncoder: eccentricity map size mismatch");

    ImageF out = frame;
    const auto tiles =
        tileGrid(frame.width(), frame.height(), params_.tileSize);

    const int participants = std::max(
        1, std::min<int>(params_.threads,
                         static_cast<int>(tiles.size())));
    std::vector<PipelineStats> partial(participants);
    std::vector<TileScratch> scratch(participants);

    auto processRange = [&](std::size_t begin, std::size_t end,
                            int slot) {
        PipelineStats &stats = partial[slot];
        TileScratch &s = scratch[slot];
        for (std::size_t i = begin; i < end; ++i) {
            const TileRect &rect = tiles[i];
            ++stats.totalTiles;

            // Foveal bypass: any tile touching the foveal region is
            // left numerically intact (Sec. 5.1). Tested on the map
            // alone, before any pixel is gathered.
            if (ecc.minInRect(rect) < params_.fovealCutoffDeg) {
                ++stats.fovealBypassTiles;
                continue;
            }

            // SoA gather into the worker's reusable scratch.
            const std::size_t n =
                static_cast<std::size_t>(rect.pixelCount());
            s.pixels.resize(n);
            s.ecc.resize(n);
            std::size_t k = 0;
            for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                const Vec3 *row = &frame.at(rect.x0, y);
                for (int x = 0; x < rect.w; ++x, ++k) {
                    s.pixels[k] = row[x];
                    s.ecc[k] = ecc.at(rect.x0 + x, y);
                }
            }

            const TileOutcome adj = adjuster_.adjustTile(s);
            if (adj.chosenCase == AdjustCase::C1)
                ++stats.c1Tiles;
            else
                ++stats.c2Tiles;
            if (adj.chosenAxis == 0)
                ++stats.redAxisTiles;
            else
                ++stats.blueAxisTiles;
            stats.gamutClampedPixels +=
                static_cast<std::size_t>(adj.gamutClampedPixels);

            // Adjusted pixels go straight into the output rows.
            const std::vector<Vec3> &res = *adj.adjusted;
            k = 0;
            for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                std::copy_n(&res[k], rect.w, &out.at(rect.x0, y));
                k += static_cast<std::size_t>(rect.w);
            }
        }
    };

    if (participants == 1)
        processRange(0, tiles.size(), 0);
    else
        pool_->parallelFor(tiles.size(), kTileGrain, participants,
                           processRange);

    if (stats_out) {
        PipelineStats total;
        for (const auto &p : partial)
            total += p;
        *stats_out = total;
    }
    return out;
}

EncodedFrame
PerceptualEncoder::encodeFrame(const ImageF &frame,
                               const EccentricityMap &ecc) const
{
    EncodedFrame result;
    result.adjustedLinear = adjustFrame(frame, ecc, &result.stats);
    result.adjustedSrgb = toSrgb8(result.adjustedLinear);
    result.bdStream =
        codec_.encode(result.adjustedSrgb, &result.bdStats);
    return result;
}

} // namespace pce
