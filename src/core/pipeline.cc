#include "core/pipeline.hh"

#include <algorithm>
#include <stdexcept>

#include "common/integrity.hh"
#include "obs/trace.hh"

namespace pce {

namespace {

/**
 * Tiles claimed per scheduler grab. Small enough that the pool
 * rebalances around the nearly-free foveal region, large enough that
 * the atomic counter is off the critical path.
 */
constexpr std::size_t kTileGrain = 8;

} // namespace

PipelineStats &
PipelineStats::operator+=(const PipelineStats &o)
{
    totalTiles += o.totalTiles;
    fovealBypassTiles += o.fovealBypassTiles;
    c1Tiles += o.c1Tiles;
    c2Tiles += o.c2Tiles;
    redAxisTiles += o.redAxisTiles;
    blueAxisTiles += o.blueAxisTiles;
    gamutClampedPixels += o.gamutClampedPixels;
    saccadeBypassTiles += o.saccadeBypassTiles;
    return *this;
}

PerceptualEncoder::PerceptualEncoder(const DiscriminationModel &model,
                                     const PipelineParams &params)
    : model_(model), params_(params),
      adjuster_(model, params.extremaFn), codec_(params.tileSize)
{
    if (params_.threads < 1)
        throw std::invalid_argument("PerceptualEncoder: threads < 1");
    if (params_.pool != nullptr) {
        pool_ = params_.pool;
    } else if (params_.threads > 1) {
        ownedPool_ = std::make_unique<ThreadPool>(params_.threads - 1);
        pool_ = ownedPool_.get();
    }
}

ImageF
PerceptualEncoder::adjustFrame(const ImageF &frame,
                               const EccentricityMap &ecc,
                               PipelineStats *stats_out) const
{
    ImageF out;
    adjustFrameInto(frame, ecc, out, stats_out);
    return out;
}

void
PerceptualEncoder::adjustFrameInto(const ImageF &frame,
                                   const EccentricityMap &ecc,
                                   ImageF &out,
                                   PipelineStats *stats_out) const
{
    if (frame.width() != ecc.width() || frame.height() != ecc.height())
        throw std::invalid_argument(
            "PerceptualEncoder: eccentricity map size mismatch");

    // No frame-wide copy: every tile is either adjusted (its rows are
    // fully written below) or foveal-bypassed (its rows are copied from
    // the source in the bypass branch), so the output is covered
    // exactly once either way.
    if (out.width() != frame.width() ||
        out.height() != frame.height())
        out = ImageF(frame.width(), frame.height());

    // Geometry-keyed tile-grid cache (same pattern as
    // BdEncodeScratch.tiles): a stream of same-size frames must not
    // rebuild the grid per frame. encodeFrameInto ends up holding the
    // grid twice (here and in the BD scratch) — accepted: the copies
    // are small and keeping the codec's scratch self-contained beats
    // threading a shared cache through its API.
    struct TileGridCache
    {
        int w = -1, h = -1, tile = -1;
        std::vector<TileRect> tiles;
    };
    static thread_local TileGridCache grid;
    if (grid.w != frame.width() || grid.h != frame.height() ||
        grid.tile != params_.tileSize) {
        grid.tiles = tileGrid(frame.width(), frame.height(),
                              params_.tileSize);
        grid.w = frame.width();
        grid.h = frame.height();
        grid.tile = params_.tileSize;
    }
    const std::vector<TileRect> &tiles = grid.tiles;

    const int participants = std::max(
        1, std::min<int>(params_.threads,
                         static_cast<int>(tiles.size())));
    // Per-slot working sets, reused across frames. Thread-local (not
    // members) so concurrent adjustFrame calls on one const encoder
    // from different threads stay safe; within one call the slots are
    // shared with the pool workers through the lambda as before. The
    // arenas grow to the tile size once and then make the steady state
    // of a frame stream allocation-free. Reuse is capped at moderate
    // tile sizes: the SoA arena costs ~28 lanes x tileSize^2 doubles
    // per slot (~230 KB at the 32 cap, megabytes beyond), and that
    // retention must not outlive the call for large-tile configs —
    // whose per-tile math dwarfs one allocation anyway — so those use
    // call-local scratch instead. The paper's tile sizes (4..16) all
    // stay on the reuse path.
    static thread_local std::vector<PipelineStats> partial_tls;
    static thread_local std::vector<TileScratch> scratch_tls;
    std::vector<TileScratch> scratch_local;
    const bool reuse_scratch = params_.tileSize <= 32;
    std::vector<TileScratch> &scratch =
        reuse_scratch ? scratch_tls : scratch_local;
    if (scratch.size() < static_cast<std::size_t>(participants))
        scratch.resize(participants);
    partial_tls.assign(participants, PipelineStats{});
    std::vector<PipelineStats> &partial = partial_tls;

    const bool kernel_flow = adjuster_.usingSimdKernels();
    auto processRange = [&](std::size_t begin, std::size_t end,
                            int slot) {
        PipelineStats &stats = partial[slot];
        TileScratch &s = scratch[slot];
        for (std::size_t i = begin; i < end; ++i) {
            const TileRect &rect = tiles[i];
            ++stats.totalTiles;

            // Foveal bypass: any tile touching the foveal region is
            // left numerically intact (Sec. 5.1). Tested on the map
            // alone, before any pixel is gathered.
            if (ecc.minInRect(rect) < params_.fovealCutoffDeg) {
                ++stats.fovealBypassTiles;
                for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
                    std::copy_n(&frame.at(rect.x0, y), rect.w,
                                &out.at(rect.x0, y));
                continue;
            }

            const std::size_t n =
                static_cast<std::size_t>(rect.pixelCount());
            TileOutcome adj;
            if (kernel_flow) {
                // Gather straight into the planar kernel lanes.
                s.soa.resize(n);
                double *px = s.soa.lane(simd::kPx);
                double *py = s.soa.lane(simd::kPy);
                double *pz = s.soa.lane(simd::kPz);
                double *pe = s.soa.lane(simd::kEcc);
                std::size_t k = 0;
                for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                    const Vec3 *row = &frame.at(rect.x0, y);
                    for (int x = 0; x < rect.w; ++x, ++k) {
                        px[k] = row[x].x;
                        py[k] = row[x].y;
                        pz[k] = row[x].z;
                        pe[k] = ecc.at(rect.x0 + x, y);
                    }
                }
                adj = adjuster_.adjustTileSoA(s);
            } else {
                // AoS gather into the worker's reusable scratch.
                s.pixels.resize(n);
                s.ecc.resize(n);
                std::size_t k = 0;
                for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                    const Vec3 *row = &frame.at(rect.x0, y);
                    for (int x = 0; x < rect.w; ++x, ++k) {
                        s.pixels[k] = row[x];
                        s.ecc[k] = ecc.at(rect.x0 + x, y);
                    }
                }
                adj = adjuster_.adjustTile(s);
            }
            if (adj.chosenCase == AdjustCase::C1)
                ++stats.c1Tiles;
            else
                ++stats.c2Tiles;
            if (adj.chosenAxis == 0)
                ++stats.redAxisTiles;
            else
                ++stats.blueAxisTiles;
            stats.gamutClampedPixels +=
                static_cast<std::size_t>(adj.gamutClampedPixels);

            // Adjusted pixels go straight into the output rows.
            if (kernel_flow) {
                const bool red = adj.chosenAxis == 0;
                const double *ox = s.soa.lane(
                    red ? simd::kOutRedX : simd::kOutBlueX);
                const double *oy = s.soa.lane(
                    red ? simd::kOutRedY : simd::kOutBlueY);
                const double *oz = s.soa.lane(
                    red ? simd::kOutRedZ : simd::kOutBlueZ);
                std::size_t k = 0;
                for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                    Vec3 *row = &out.at(rect.x0, y);
                    for (int x = 0; x < rect.w; ++x, ++k)
                        row[x] = Vec3(ox[k], oy[k], oz[k]);
                }
            } else {
                const std::vector<Vec3> &res = *adj.adjusted;
                std::size_t k = 0;
                for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                    std::copy_n(&res[k], rect.w, &out.at(rect.x0, y));
                    k += static_cast<std::size_t>(rect.w);
                }
            }
        }
    };

    if (participants == 1)
        processRange(0, tiles.size(), 0);
    else
        pool_->parallelFor(tiles.size(), kTileGrain, participants,
                           processRange);

    if (stats_out) {
        PipelineStats total;
        for (const auto &p : partial)
            total += p;
        *stats_out = total;
    }
}

EncodedFrame
PerceptualEncoder::encodeFrame(const ImageF &frame,
                               const EccentricityMap &ecc) const
{
    EncodedFrame result;
    encodeFrameInto(frame, ecc, result);
    return result;
}

void
PerceptualEncoder::encodeFrameInto(const ImageF &frame,
                                   const EccentricityMap &ecc,
                                   EncodedFrame &out) const
{
    out.seal = FrameSeal{};
    {
        obs::TraceSpan span("encode/adjust");
        adjustFrameInto(frame, ecc, out.adjustedLinear, &out.stats);
    }
    {
        obs::TraceSpan span("encode/quantize");
        toSrgb8Into(out.adjustedLinear, out.adjustedSrgb);
    }
    obs::TraceSpan span("encode/bd");
    codec_.encodeInto(out.adjustedSrgb, &out.bdStats, out.bdStream,
                      &out.bdScratch, pool_, params_.threads);
}

GazePhase
PerceptualEncoder::encodeFrameGazeInto(const ImageF &frame,
                                       GazeTrackedEccentricity &gaze,
                                       const GazeSample &sample,
                                       EncodedFrame &out) const
{
    // The no-false-bypass guarantee of the incremental map requires
    // the always-exact band to cover the foveal cutoff plus the worst
    // accumulated shift error (gaze/incremental_ecc.hh).
    const IncrementalEccParams &ep = gaze.updater().params();
    if (ep.exactBandDeg <
        params_.fovealCutoffDeg + ep.maxAccumulatedErrorDeg)
        throw std::invalid_argument(
            "PerceptualEncoder::encodeFrameGazeInto: exactBandDeg < "
            "fovealCutoffDeg + maxAccumulatedErrorDeg breaks the "
            "foveal-bypass guarantee");
    if (frame.width() != gaze.map().width() ||
        frame.height() != gaze.map().height())
        throw std::invalid_argument(
            "PerceptualEncoder::encodeFrameGazeInto: frame does not "
            "match the gaze state's eccentricity map");

    GazePhase phase;
    {
        obs::TraceSpan span("encode/gaze_update");
        phase = gaze.update(sample);
    }
    if (phase == GazePhase::Fixation) {
        encodeFrameInto(frame, gaze.map(), out);
        return phase;
    }

    // Saccadic suppression: every tile takes the bypass path — one
    // frame-wide copy instead of the per-tile adjustment loop, then
    // the unchanged quantize + BD encode.
    out.seal = FrameSeal{};
    {
        // The bypass span plays the role of encode/adjust in the
        // frame timeline: same slot, different (cheaper) work.
        obs::TraceSpan span("encode/saccade_bypass");
        if (out.adjustedLinear.width() != frame.width() ||
            out.adjustedLinear.height() != frame.height())
            out.adjustedLinear = ImageF(frame.width(), frame.height());
        std::copy(frame.pixels().begin(), frame.pixels().end(),
                  out.adjustedLinear.pixels().begin());
        const std::size_t tiles =
            static_cast<std::size_t>(
                (frame.width() + params_.tileSize - 1) /
                params_.tileSize) *
            static_cast<std::size_t>(
                (frame.height() + params_.tileSize - 1) /
                params_.tileSize);
        out.stats = PipelineStats{};
        out.stats.totalTiles = tiles;
        out.stats.saccadeBypassTiles = tiles;
    }
    {
        obs::TraceSpan span("encode/quantize");
        toSrgb8Into(out.adjustedLinear, out.adjustedSrgb);
    }
    obs::TraceSpan span("encode/bd");
    codec_.encodeInto(out.adjustedSrgb, &out.bdStats, out.bdStream,
                      &out.bdScratch, pool_, params_.threads);
    return phase;
}

bool
PerceptualEncoder::verifyRoundTrip(EncodedFrame &frame) const
{
    BdCodec::decodeInto(frame.bdStream, frame.roundTripSrgb,
                        &frame.bdDecodeScratch, pool_,
                        params_.threads, kBdDefaultMaxDecodePixels,
                        params_.duplicateValidate);
    return frame.roundTripSrgb == frame.adjustedSrgb;
}

void
sealFrame(EncodedFrame &frame)
{
    frame.seal.bdStreamCrc =
        crc32(frame.bdStream.data(), frame.bdStream.size());
    frame.seal.srgbHash =
        hash64(frame.adjustedSrgb.data().data(),
               frame.adjustedSrgb.data().size());
    frame.seal.sealed = true;
}

bool
verifyFrameSeal(const EncodedFrame &frame)
{
    if (!frame.seal.sealed)
        return false;
    return crc32(frame.bdStream.data(), frame.bdStream.size()) ==
               frame.seal.bdStreamCrc &&
           hash64(frame.adjustedSrgb.data().data(),
                  frame.adjustedSrgb.data().size()) ==
               frame.seal.srgbHash;
}

} // namespace pce
