#include "core/pipeline.hh"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace pce {

PipelineStats &
PipelineStats::operator+=(const PipelineStats &o)
{
    totalTiles += o.totalTiles;
    fovealBypassTiles += o.fovealBypassTiles;
    c1Tiles += o.c1Tiles;
    c2Tiles += o.c2Tiles;
    redAxisTiles += o.redAxisTiles;
    blueAxisTiles += o.blueAxisTiles;
    gamutClampedPixels += o.gamutClampedPixels;
    return *this;
}

PerceptualEncoder::PerceptualEncoder(const DiscriminationModel &model,
                                     const PipelineParams &params)
    : model_(model), params_(params),
      adjuster_(model, params.extremaFn), codec_(params.tileSize)
{
    if (params_.threads < 1)
        throw std::invalid_argument("PerceptualEncoder: threads < 1");
}

ImageF
PerceptualEncoder::adjustFrame(const ImageF &frame,
                               const EccentricityMap &ecc,
                               PipelineStats *stats_out) const
{
    if (frame.width() != ecc.width() || frame.height() != ecc.height())
        throw std::invalid_argument(
            "PerceptualEncoder: eccentricity map size mismatch");

    ImageF out = frame;
    const auto tiles =
        tileGrid(frame.width(), frame.height(), params_.tileSize);

    const int n_threads = std::max(
        1, std::min<int>(params_.threads,
                         static_cast<int>(tiles.size())));
    std::vector<PipelineStats> partial(n_threads);

    auto work = [&](int tid) {
        PipelineStats &stats = partial[tid];
        std::vector<Vec3> pixels;
        std::vector<double> eccs;
        for (std::size_t i = tid; i < tiles.size();
             i += static_cast<std::size_t>(n_threads)) {
            const TileRect &rect = tiles[i];
            ++stats.totalTiles;

            pixels.clear();
            eccs.clear();
            double min_ecc = 1e300;
            for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
                    pixels.push_back(frame.at(x, y));
                    const double e = ecc.at(x, y);
                    eccs.push_back(e);
                    min_ecc = std::min(min_ecc, e);
                }
            }

            // Foveal bypass: any tile touching the foveal region is
            // left numerically intact (Sec. 5.1).
            if (min_ecc < params_.fovealCutoffDeg) {
                ++stats.fovealBypassTiles;
                continue;
            }

            const TileAdjustment adj =
                adjuster_.adjustTile(pixels, eccs);
            if (adj.chosenCase == AdjustCase::C1)
                ++stats.c1Tiles;
            else
                ++stats.c2Tiles;
            if (adj.chosenAxis == 0)
                ++stats.redAxisTiles;
            else
                ++stats.blueAxisTiles;
            stats.gamutClampedPixels +=
                static_cast<std::size_t>(adj.gamutClampedPixels);

            std::size_t k = 0;
            for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
                for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
                    out.at(x, y) = adj.adjusted[k++];
        }
    };

    if (n_threads == 1) {
        work(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (int t = 0; t < n_threads; ++t)
            pool.emplace_back(work, t);
        for (auto &th : pool)
            th.join();
    }

    if (stats_out) {
        PipelineStats total;
        for (const auto &p : partial)
            total += p;
        *stats_out = total;
    }
    return out;
}

EncodedFrame
PerceptualEncoder::encodeFrame(const ImageF &frame,
                               const EccentricityMap &ecc) const
{
    EncodedFrame result;
    result.adjustedLinear = adjustFrame(frame, ecc, &result.stats);
    result.adjustedSrgb = toSrgb8(result.adjustedLinear);
    result.bdStream = codec_.encode(result.adjustedSrgb);
    result.bdStats = codec_.analyze(result.adjustedSrgb);
    return result;
}

} // namespace pce
