/**
 * @file
 * Frame-level perceptual encoding pipeline (paper Fig. 7).
 *
 * From Rendering Pipeline -> [Color Adjustment (this module)] ->
 * Transform to sRGB -> Base+Delta compression -> DRAM.
 *
 * Per tile, the encoder queries per-pixel eccentricities, bypasses tiles
 * inside the foveal cutoff (Sec. 5.1 keeps the central 10-degree FoV,
 * i.e. eccentricity < 5 degrees, unchanged), runs the TileAdjuster on
 * the rest, and hands the adjusted frame to the unmodified BD codec.
 * Decoding is plain BD decoding — the algorithm requires no decoder
 * change (Sec. 3.4, "Remarks on Decoding").
 */

#ifndef PCE_CORE_PIPELINE_HH
#define PCE_CORE_PIPELINE_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "bd/bd_codec.hh"
#include "common/thread_pool.hh"
#include "core/adjust.hh"
#include "gaze/incremental_ecc.hh"
#include "image/image.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"

namespace pce {

/** Pipeline configuration. */
struct PipelineParams
{
    /** BD tile edge (paper default 4; Sec. 6.4 sweeps 4..16). */
    int tileSize = 4;
    /** Eccentricity below which tiles are left untouched, degrees. */
    double fovealCutoffDeg = 5.0;
    /**
     * Parallel participants for the tile loop and the BD passes
     * (1 = serial). With no external @ref pool, the encoder spawns and
     * owns a persistent pool of threads-1 workers.
     */
    int threads = 1;
    /** Extrema backend override (empty = double-precision Eq. 11-13). */
    ExtremaFn extremaFn;
    /**
     * Externally owned worker pool (non-owning; nullptr = the encoder
     * creates its own when threads > 1). The encode service shares one
     * pool across every encoder it hosts this way, so concurrent
     * streams batch onto a single set of persistent workers through
     * the pool's dynamic chunk scheduler instead of oversubscribing
     * the machine with per-encoder pools. The pool must outlive the
     * encoder; @ref threads still caps the participants per dispatch
     * (clamped by the pool's own size).
     */
    ThreadPool *pool = nullptr;
    /**
     * Selective-EDDI hardening of decode paths driven through this
     * pipeline (verifyRoundTrip): run the BD decoder's serial
     * validate+prefix walk twice and compare (see
     * BdCodec::decodeInto's duplicate_validate and docs/FAULTS.md).
     */
    bool duplicateValidate = false;
};

/** Aggregate statistics of one encoded frame. */
struct PipelineStats
{
    std::size_t totalTiles = 0;
    std::size_t fovealBypassTiles = 0;
    /** Fig. 12: case distribution over adjusted tiles (chosen axis). */
    std::size_t c1Tiles = 0;
    std::size_t c2Tiles = 0;
    /** Axis selection outcome over adjusted tiles. */
    std::size_t redAxisTiles = 0;
    std::size_t blueAxisTiles = 0;
    std::size_t gamutClampedPixels = 0;
    /**
     * Tiles copied through unadjusted because the frame fell in a
     * saccade (saccadic suppression; encodeFrameGazeInto only).
     */
    std::size_t saccadeBypassTiles = 0;

    PipelineStats &operator+=(const PipelineStats &o);
};

/**
 * Integrity seal over an EncodedFrame's two deliverable buffers (see
 * docs/FAULTS.md): CRC-32 of the BD bitstream (guaranteed 1-3 bit
 * flip detection at frame-stream sizes) and hash64 of the adjusted
 * sRGB image (fast enough to run per frame on megabyte buffers).
 * Written by sealFrame() right after encode, checked by
 * verifyFrameSeal() at any later hand-off — the encode service seals
 * in the dispatcher and verifies at collect(), so a bit flip while
 * the frame sat in its slot is detected instead of delivered.
 */
struct FrameSeal
{
    uint32_t bdStreamCrc = 0;
    uint64_t srgbHash = 0;
    bool sealed = false;
};

/**
 * Everything produced for one frame. A frame loop that keeps one
 * EncodedFrame and calls encodeFrameInto reuses every buffer here
 * (images, bitstream, and the BD encoder's working storage), making
 * the steady state allocation-free.
 */
struct EncodedFrame
{
    ImageF adjustedLinear;   ///< post-adjustment linear RGB
    ImageU8 adjustedSrgb;    ///< post-quantization sRGB
    std::vector<uint8_t> bdStream;  ///< BD bitstream of adjustedSrgb
    BdFrameStats bdStats;    ///< bit accounting of the stream
    PipelineStats stats;
    /** Reusable working storage of the BD encode (not an output). */
    BdEncodeScratch bdScratch;
    /**
     * Reusable storage of verifyRoundTrip (not outputs): the decoded
     * image and the BD decoder's working storage, kept so per-frame
     * verification stays allocation-free in the steady state.
     */
    ImageU8 roundTripSrgb;
    BdDecodeScratch bdDecodeScratch;
    /**
     * Integrity seal over bdStream + adjustedSrgb; invalidated by
     * every encode into this frame, written by sealFrame().
     */
    FrameSeal seal;
};

/**
 * Checksum @p frame's deliverable buffers (BD bitstream + adjusted
 * sRGB) into its seal. Call after the encode that produced them;
 * re-encoding invalidates the seal automatically.
 */
void sealFrame(EncodedFrame &frame);

/**
 * Recompute the seal checksums and compare. Returns false when the
 * frame was never sealed (strict: an unsealed frame offers no
 * integrity evidence) or when either buffer changed since sealing.
 */
bool verifyFrameSeal(const EncodedFrame &frame);

/**
 * The full Fig. 7 encoder.
 *
 * The tile loop is the production hot path and is built for
 * throughput: per-worker TileScratch buffers make the steady state
 * allocation-free, the foveal-bypass test runs on the eccentricity map
 * before any pixel is gathered (O(tile border) per bypassed tile), and
 * adjusted tiles are written straight into the output image rows. With
 * threads > 1 the encoder owns a persistent ThreadPool and schedules
 * tiles dynamically in chunks — foveal tiles are nearly free, so static
 * striding would load-imbalance badly. Output is bit-identical for any
 * thread count (tests assert this).
 *
 * Ownership/reuse: the encoder borrows the DiscriminationModel (and
 * the external pool, when PipelineParams::pool is set) for its whole
 * lifetime; it never takes ownership of frames, eccentricity maps, or
 * EncodedFrame outputs. The `*Into` entry points reuse every buffer
 * the caller's output already holds and resize only on geometry
 * change — keep one EncodedFrame per frame source and the steady
 * state allocates nothing (this is the contract the encode service's
 * per-stream slots are built on). The encoder is safe to share across
 * threads for concurrent encodes with distinct outputs; one
 * EncodedFrame must not be passed to two concurrent calls.
 */
class PerceptualEncoder
{
  public:
    /**
     * @param model Discrimination model; must outlive the encoder.
     * @param params Pipeline configuration.
     */
    PerceptualEncoder(const DiscriminationModel &model,
                      const PipelineParams &params = {});

    /**
     * Run color adjustment only (no BD encode); the cheap path for
     * perceptual-quality studies.
     */
    ImageF adjustFrame(const ImageF &frame, const EccentricityMap &ecc,
                       PipelineStats *stats_out = nullptr) const;

    /**
     * adjustFrame into a caller-owned output image. @p out is resized
     * only when the frame dimensions change, so a stream of same-size
     * frames reuses one allocation. @p out must not alias @p frame.
     */
    void adjustFrameInto(const ImageF &frame,
                         const EccentricityMap &ecc, ImageF &out,
                         PipelineStats *stats_out = nullptr) const;

    /** Full pipeline: adjust, quantize, BD-encode, account bits. */
    EncodedFrame encodeFrame(const ImageF &frame,
                             const EccentricityMap &ecc) const;

    /**
     * encodeFrame into a caller-owned result, reusing every buffer the
     * result already holds (adjusted images, BD bitstream, encoder
     * scratch): the steady state of an animation/stereo frame loop
     * allocates nothing. encodeFrame is a thin wrapper over this.
     */
    void encodeFrameInto(const ImageF &frame,
                         const EccentricityMap &ecc,
                         EncodedFrame &out) const;

    /**
     * The eye-tracked per-frame entry point: classify @p sample
     * (fixation or saccade) through @p gaze's streaming I-VT
     * classifier, re-fixate its eccentricity map incrementally (see
     * gaze/incremental_ecc.hh for the exactness contract), and encode
     * the frame against it. During a saccade the visual system
     * suppresses perception, so the encoder switches every tile to the
     * cheap bypass path — the frame is quantized and BD-encoded
     * unadjusted (still losslessly decodable), skipping both the
     * per-tile adjustment math and the map update for that frame;
     * PipelineStats::saccadeBypassTiles records it.
     *
     * @p gaze is the caller's per-stream state (one per frame source;
     * the encode service keeps one per gaze stream) and is mutated —
     * feed samples in time order from one thread at a time. Throws
     * std::invalid_argument if the gaze state's exact-band guarantee
     * cannot cover this pipeline's foveal cutoff (exactBandDeg <
     * fovealCutoffDeg + maxAccumulatedErrorDeg), or on a frame/map
     * geometry mismatch. Returns the classified phase.
     */
    GazePhase encodeFrameGazeInto(const ImageF &frame,
                                  GazeTrackedEccentricity &gaze,
                                  const GazeSample &sample,
                                  EncodedFrame &out) const;

    /**
     * Round-trip verify: decode @p frame's BD stream (in parallel on
     * the encoder's pool) into frame.roundTripSrgb and compare it
     * byte-for-byte against frame.adjustedSrgb — the codec-is-lossless
     * invariant a service can assert per frame at decode cost, reusing
     * the frame's buffers. Returns true when the stream reproduces the
     * encoded image exactly.
     *
     * @throws std::runtime_error if the stream fails the hardened
     *         decode validation (it was corrupted after encode).
     */
    bool verifyRoundTrip(EncodedFrame &frame) const;

    const PipelineParams &params() const { return params_; }

    /**
     * The worker pool this encoder schedules on: the external pool
     * from PipelineParams::pool when one was given, the encoder's own
     * persistent pool otherwise, nullptr when serial. Exposed so a
     * caller holding only the encoder (e.g. a decode step of the same
     * frame loop) can reuse the workers instead of spawning more.
     */
    ThreadPool *pool() const { return pool_; }

  private:
    const DiscriminationModel &model_;
    PipelineParams params_;
    TileAdjuster adjuster_;
    BdCodec codec_;
    /** Persistent workers (threads - 1), when not externally pooled. */
    std::unique_ptr<ThreadPool> ownedPool_;
    /** The active pool: external, owned, or nullptr (serial). */
    ThreadPool *pool_ = nullptr;
};

} // namespace pce

#endif // PCE_CORE_PIPELINE_HH
