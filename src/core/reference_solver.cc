#include "core/reference_solver.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "color/dkl.hh"

namespace pce {

double
channelSpread(const std::vector<Vec3> &colors, int axis)
{
    if (colors.empty())
        return 0.0;
    double lo = colors[0][axis];
    double hi = colors[0][axis];
    for (const auto &c : colors) {
        lo = std::min(lo, c[axis]);
        hi = std::max(hi, c[axis]);
    }
    return hi - lo;
}

namespace {

/** Radial-scaling projection of an RGB color onto a DKL ellipsoid. */
Vec3
projectToEllipsoid(const Vec3 &rgb, const Ellipsoid &e)
{
    const Vec3 dkl = rgbToDkl(rgb);
    const Vec3 u = (dkl - e.centerDkl).cwiseDiv(e.semiAxes);
    const double r = u.norm();
    if (r <= 1.0)
        return rgb;
    const Vec3 projected =
        e.centerDkl + (u / r).cwiseMul(e.semiAxes);
    return dklToRgb(projected);
}

} // namespace

SolverResult
minimizeSpreadSubgradient(const std::vector<Vec3> &pixels,
                          const std::vector<Ellipsoid> &ellipsoids,
                          int axis, int iterations, double step0)
{
    if (pixels.size() != ellipsoids.size())
        throw std::invalid_argument(
            "minimizeSpreadSubgradient: size mismatch");
    if (axis != 0 && axis != 1 && axis != 2)
        throw std::invalid_argument("minimizeSpreadSubgradient: bad axis");

    SolverResult result;
    result.colors = pixels;
    if (pixels.empty())
        return result;

    std::vector<Vec3> best = result.colors;
    double best_spread = channelSpread(best, axis);

    for (int k = 1; k <= iterations; ++k) {
        // Subgradient of max_i z_i - min_i z_i: +e_axis at the argmax,
        // -e_axis at the argmin.
        std::size_t arg_hi = 0;
        std::size_t arg_lo = 0;
        for (std::size_t i = 1; i < result.colors.size(); ++i) {
            if (result.colors[i][axis] >
                result.colors[arg_hi][axis])
                arg_hi = i;
            if (result.colors[i][axis] <
                result.colors[arg_lo][axis])
                arg_lo = i;
        }
        const double step = step0 / std::sqrt(static_cast<double>(k));

        Vec3 hi = result.colors[arg_hi];
        hi[axis] -= step;
        result.colors[arg_hi] =
            projectToEllipsoid(hi, ellipsoids[arg_hi]);

        Vec3 lo = result.colors[arg_lo];
        lo[axis] += step;
        result.colors[arg_lo] =
            projectToEllipsoid(lo, ellipsoids[arg_lo]);

        const double spread = channelSpread(result.colors, axis);
        if (spread < best_spread) {
            best_spread = spread;
            best = result.colors;
        }
    }

    result.colors = best;
    result.spread = best_spread;
    result.iterations = iterations;
    return result;
}

} // namespace pce
