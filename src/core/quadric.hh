/**
 * @file
 * Ellipsoid transformation and extrema computation (paper Sec. 3.4).
 *
 * Discrimination ellipsoids are axis-aligned in DKL space but become
 * general quadric surfaces in linear RGB (Eq. 9-10). The color-adjustment
 * algorithm needs, per pixel, the two points of its ellipsoid with the
 * highest/lowest value along the optimization axis (Red or Blue): the
 * "extrema" connected by the extrema vector (Fig. 6, Eq. 11-13).
 *
 * Two implementations are provided:
 *  - extremaAlongAxis(): the paper's hardware datapath — gradient planes
 *    from the quadric coefficients, cross product (Eq. 12), then a
 *    line-ellipsoid intersection in DKL space (Eq. 13). This mirrors
 *    what the Compute Extrema Block of the CAU evaluates (Fig. 8).
 *  - extremaAlongAxisLagrange(): an independent closed form (support
 *    points of a linear functional over an ellipsoid). Tests assert both
 *    agree to floating-point tolerance for random colors/eccentricities.
 */

#ifndef PCE_CORE_QUADRIC_HH
#define PCE_CORE_QUADRIC_HH

#include <array>

#include "common/mat3.hh"
#include "common/vec3.hh"
#include "perception/discrimination.hh"

namespace pce {

/**
 * A quadric surface in linear RGB space stored unnormalized as
 * value(p) = p^T Q3 p + lin . p + c, with value < 0 strictly inside.
 *
 * The paper's Eq. 9 form (A..I with a +1 constant) is this divided by c;
 * paperCoefficients() returns that normalization for the Eq. 12 datapath
 * and for tests against Eq. 10.
 */
struct Quadric
{
    Mat3 q3;    ///< symmetric quadratic part
    Vec3 lin;   ///< linear part
    double c = 0.0;  ///< constant part

    /**
     * Build the RGB-space quadric of a DKL discrimination ellipsoid
     * (Eq. 10, derived by direct substitution d = M_RGB2DKL * p).
     */
    static Quadric fromDklEllipsoid(const Ellipsoid &e);

    /** Evaluate the quadric at a linear-RGB point. */
    double value(const Vec3 &rgb) const;

    /** True if the RGB point is inside or on the surface. */
    bool contains(const Vec3 &rgb, double tol = 1e-12) const
    { return value(rgb) <= tol; }

    /**
     * Paper Eq. 9 coefficients (A, B, C, D, E, F, G, H, I).
     * @throws std::domain_error when the constant term is zero (the
     *         normalized form does not exist; cannot happen for
     *         discrimination ellipsoids, whose centers lie strictly
     *         inside, making value(center) = -scale < 0 and c != 0
     *         whenever the center is not the RGB origin-mapped point).
     */
    std::array<double, 9> paperCoefficients() const;
};

/** The high/low points of an ellipsoid along one RGB axis. */
struct ExtremaPair
{
    Vec3 high;  ///< RGB point with the largest value on the axis
    Vec3 low;   ///< RGB point with the smallest value on the axis

    /** The extrema vector V of Fig. 6 (from low to high). */
    Vec3 extremaVector() const { return high - low; }
};

/**
 * Extrema of a DKL ellipsoid along RGB axis @p axis (0 = R, 2 = B)
 * using the paper's Eq. 11-13 datapath.
 */
ExtremaPair extremaAlongAxis(const Ellipsoid &e, int axis);

/**
 * Axis-independent per-ellipsoid precomputation of the Eq. 11-13
 * datapath, built once and shared by both optimization axes. Holds the
 * quadric's quadratic part (the linear and constant parts never enter
 * the extrema computation), the inverse squared semi-axes (reused by
 * the Eq. 13 normalization), and the RGB-space center.
 *
 * Exposed (rather than file-local in quadric.cc) because the SIMD
 * kernel layer's scalar reference path (src/simd) evaluates extrema
 * through exactly these helpers — the bit-identity contract between
 * dispatch levels is anchored to this code.
 */
struct ExtremaFrame
{
    Mat3 q3;          ///< M^T S M, S = diag(1/s_i^2)
    Vec3 sInv2;       ///< 1 / s_i^2
    Vec3 rgbCenter;   ///< M^-1 * centerDkl
};

/** Build the shared frame of @p e (the axis-independent half). */
ExtremaFrame buildExtremaFrame(const Ellipsoid &e);

/**
 * The per-axis half of the Eq. 11-13 datapath.
 * @throws std::domain_error on a degenerate (zero-denominator) frame.
 */
ExtremaPair extremaFromFrame(const ExtremaFrame &f, int axis);

/** Independent Lagrangian closed form; used as a cross-check. */
ExtremaPair extremaAlongAxisLagrange(const Ellipsoid &e, int axis);

/**
 * Extrema along both optimization axes (Red = 0 and Blue = 2) of the
 * same ellipsoid, sharing the quadric transform between them. The tile
 * adjuster evaluates both axes for every pixel (Fig. 7), and the
 * quadric construction — two 3x3 matrix products — is the dominant cost
 * of extremaAlongAxis; building it once halves that. Results are
 * bit-identical to calling extremaAlongAxis(e, 0) and (e, 2).
 */
void extremaBothAxes(const Ellipsoid &e, ExtremaPair &red,
                     ExtremaPair &blue);

} // namespace pce

#endif // PCE_CORE_QUADRIC_HH
