/**
 * @file
 * Temporal stability metric for per-frame perceptual adjustment.
 *
 * The paper's encoder adjusts every frame independently; two nearly
 * identical consecutive frames can be nudged to different points inside
 * their (identical) ellipsoids if tile statistics shift, which shows up
 * as temporal flicker even when every single frame is within threshold.
 * Some study participants indeed "noticed artifacts only during rapid
 * eye/head movement" (Sec. 6.3).
 *
 * The metric isolates adjustment-induced temporal energy: the per-pixel
 * frame-to-frame change of the *adjusted* sequence minus the change
 * already present in the *original* sequence,
 *
 *   flicker = mean_p | (A_{t+1}(p) - A_t(p)) - (O_{t+1}(p) - O_t(p)) |
 *
 * in linear RGB. Zero means the adjustment is temporally coherent; the
 * original content's own motion does not count against it.
 */

#ifndef PCE_METRICS_TEMPORAL_HH
#define PCE_METRICS_TEMPORAL_HH

#include "image/image.hh"

namespace pce {

/** Temporal statistics for one consecutive frame pair. */
struct TemporalFlickerStats
{
    /** Mean adjustment-induced temporal delta (L1 over channels). */
    double meanFlicker = 0.0;
    /** Worst single-pixel adjustment-induced temporal delta. */
    double maxFlicker = 0.0;
    /** Fraction of pixels with flicker above the given threshold. */
    double fractionAbove = 0.0;
};

/**
 * Adjustment-induced flicker between two consecutive frames.
 *
 * @param original_t   Original frame at time t.
 * @param original_t1  Original frame at time t+1 (same size).
 * @param adjusted_t   Adjusted frame at time t.
 * @param adjusted_t1  Adjusted frame at time t+1.
 * @param threshold    Linear-RGB L1 threshold for fractionAbove.
 */
TemporalFlickerStats temporalFlicker(const ImageF &original_t,
                                     const ImageF &original_t1,
                                     const ImageF &adjusted_t,
                                     const ImageF &adjusted_t1,
                                     double threshold = 0.02);

} // namespace pce

#endif // PCE_METRICS_TEMPORAL_HH
