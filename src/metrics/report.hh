/**
 * @file
 * Reporting helpers shared by the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or figures as
 * plain text: a titled, column-aligned table that can be diffed across
 * runs and pasted into EXPERIMENTS.md. This module also carries the
 * codec-comparison arithmetic (bits/pixel, reduction percentages) so all
 * benches report numbers the same way.
 */

#ifndef PCE_METRICS_REPORT_HH
#define PCE_METRICS_REPORT_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pce {

/** A column-aligned text table with a title. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> header)
    { header_ = std::move(header); }

    /** Append one row of cells. */
    void addRow(std::vector<std::string> row)
    { rows_.push_back(std::move(row)); }

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 2);

/** Compressed size expressed as bits per pixel. */
double bitsPerPixel(std::size_t total_bits, std::size_t pixels);

/** Bytes-based bits-per-pixel (streams measured in bytes). */
double bitsPerPixelFromBytes(std::size_t bytes, std::size_t pixels);

/** Bandwidth reduction of @p bpp versus a raw 24 bpp frame, percent. */
double reductionVsRawPercent(double bpp);

/** Bandwidth reduction of @p ours_bpp versus @p base_bpp, percent. */
double reductionVsBaselinePercent(double ours_bpp, double base_bpp);

} // namespace pce

#endif // PCE_METRICS_REPORT_HH
