#include "metrics/temporal.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pce {

TemporalFlickerStats
temporalFlicker(const ImageF &original_t, const ImageF &original_t1,
                const ImageF &adjusted_t, const ImageF &adjusted_t1,
                double threshold)
{
    const int w = original_t.width();
    const int h = original_t.height();
    for (const ImageF *img : {&original_t1, &adjusted_t, &adjusted_t1}) {
        if (img->width() != w || img->height() != h)
            throw std::invalid_argument("temporalFlicker: size mismatch");
    }

    TemporalFlickerStats stats;
    if (w == 0 || h == 0)
        return stats;

    double sum = 0.0;
    std::size_t above = 0;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const Vec3 content_motion =
                original_t1.at(x, y) - original_t.at(x, y);
            const Vec3 adjusted_motion =
                adjusted_t1.at(x, y) - adjusted_t.at(x, y);
            const Vec3 induced = adjusted_motion - content_motion;
            const double l1 = std::abs(induced.x) +
                              std::abs(induced.y) +
                              std::abs(induced.z);
            sum += l1;
            stats.maxFlicker = std::max(stats.maxFlicker, l1);
            if (l1 > threshold)
                ++above;
        }
    }
    const auto n = static_cast<double>(original_t.pixelCount());
    stats.meanFlicker = sum / n;
    stats.fractionAbove = static_cast<double>(above) / n;
    return stats;
}

} // namespace pce
