#include "metrics/report.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pce {

void
TextTable::print(std::ostream &os) const
{
    // Column widths over header + rows.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto &row : rows_)
        grow(row);

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

double
bitsPerPixel(std::size_t total_bits, std::size_t pixels)
{
    return pixels == 0 ? 0.0
                       : static_cast<double>(total_bits) /
                             static_cast<double>(pixels);
}

double
bitsPerPixelFromBytes(std::size_t bytes, std::size_t pixels)
{
    return bitsPerPixel(bytes * 8, pixels);
}

double
reductionVsRawPercent(double bpp)
{
    return 100.0 * (1.0 - bpp / 24.0);
}

double
reductionVsBaselinePercent(double ours_bpp, double base_bpp)
{
    return base_bpp == 0.0 ? 0.0
                           : 100.0 * (1.0 - ours_bpp / base_bpp);
}

} // namespace pce
