/**
 * @file
 * HMD display geometry: pixel position -> retinal eccentricity.
 *
 * VR displays have a wide field of view (~100 deg, paper Sec. 1); over
 * 90% of pixels land in peripheral vision. This module models a planar
 * per-eye display viewed through the headset optics as a simple pinhole
 * projection: a pixel's eccentricity is the angle between the gaze
 * direction (through the fixation pixel) and the ray through that pixel.
 *
 * Following the paper's methodology (Sec. 5.1), the encoder keeps pixels
 * within the central foveal region unchanged; the cutoff is expressed as
 * an eccentricity in degrees (10 deg FoV => 5 deg eccentricity radius).
 */

#ifndef PCE_PERCEPTION_DISPLAY_HH
#define PCE_PERCEPTION_DISPLAY_HH

#include <vector>

#include "common/vec3.hh"
#include "image/image.hh"

namespace pce {

/** Per-eye display description. */
struct DisplayGeometry
{
    /** Per-eye resolution in pixels. */
    int width = 1832;
    int height = 1920;

    /** Horizontal field of view of one eye, degrees. */
    double horizontalFovDeg = 100.0;

    /** Fixation (gaze) point in pixel coordinates. */
    double fixationX = 1832 / 2.0;
    double fixationY = 1920 / 2.0;

    /** Focal length in pixels implied by the FoV. */
    double focalPixels() const;

    /**
     * Eccentricity (degrees) of pixel (x, y) relative to the fixation
     * point: the angle between the two view rays.
     */
    double eccentricityDeg(double x, double y) const;

    /** Eccentricity of the farthest display corner, degrees. */
    double maxEccentricityDeg() const;
};

/**
 * A precomputed per-pixel eccentricity map for a display geometry.
 * The encoder queries eccentricity per tile; precomputing avoids
 * recomputing atan per pixel per frame when the fixation is static.
 *
 * For eye-tracked streams the fixation moves every frame; rebuild()
 * re-fixates by recomputing everything in place (reusing the storage),
 * and src/gaze's IncrementalEccentricity re-fixates for small gaze
 * deltas at a fraction of that cost (shift + exact band recompute,
 * with a documented error bound).
 */
class EccentricityMap
{
  public:
    explicit EccentricityMap(const DisplayGeometry &geom);

    /**
     * Recompute the whole map for @p geom, reusing the existing
     * storage when the dimensions are unchanged (the allocation-free
     * full-rebuild path of a re-fixating stream).
     */
    void rebuild(const DisplayGeometry &geom);

    int width() const { return width_; }
    int height() const { return height_; }

    /** Fixation the map is currently built for, pixel coordinates. */
    double fixationX() const { return fixationX_; }
    double fixationY() const { return fixationY_; }

    double at(int x, int y) const
    { return ecc_[static_cast<std::size_t>(y) * width_ + x]; }

    /** Row-major raw values (width*height); pointer-pinning tests. */
    const double *data() const { return ecc_.data(); }

    /**
     * Mutable raw values. For the in-place updater's callers and for
     * fault-injection campaigns (src/fault) that flip bits in the live
     * map; writing through this bypasses the map's fixation bookkeeping,
     * so end with rebuild() (or the gaze layer's checksummed recovery,
     * gaze/incremental_ecc.hh) to restore a consistent state.
     */
    double *data() { return ecc_.data(); }

    /**
     * Minimum eccentricity over a pixel rectangle. Eccentricity grows
     * monotonically along any pixel-space ray leaving the fixation
     * point (the directions to points on a display line through the
     * fixation pixel sweep a great circle starting at the gaze ray), so
     * the minimum over a rectangle lies on its boundary whenever the
     * fixation is outside it. The encoder's foveal-bypass test therefore
     * costs O(tile border) instead of O(tile) — the map is only scanned
     * in full for the one tile containing the fixation.
     */
    double minInRect(const TileRect &rect) const;

    /** Fraction of pixels with eccentricity above @p deg. */
    double fractionBeyond(double deg) const;

  private:
    /** The in-place re-fixation updater (src/gaze) writes ecc_ and
     *  the fixation directly; its exactness contract is tested against
     *  rebuild(). */
    friend class IncrementalEccentricity;

    int width_;
    int height_;
    double fixationX_;
    double fixationY_;
    std::vector<double> ecc_;
};

} // namespace pce

#endif // PCE_PERCEPTION_DISPLAY_HH
