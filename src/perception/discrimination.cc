#include "perception/discrimination.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "color/dkl.hh"

namespace pce {

double
Ellipsoid::membership(const Vec3 &dkl) const
{
    const Vec3 d = dkl - centerDkl;
    const Vec3 n = d.cwiseDiv(semiAxes);
    return n.squaredNorm();
}

Ellipsoid
DiscriminationModel::ellipsoidFor(const Vec3 &rgb_linear,
                                  double ecc_deg) const
{
    // One DKL transform serves both the center and (for models that
    // consume it) the semi-axis evaluation. In-gamut colors — every
    // caller on the tile hot path — take the single-transform branch.
    Ellipsoid e;
    const Vec3 rgb = rgb_linear.clamped(0.0, 1.0);
    const Vec3 dkl = rgbToDkl(rgb);
    e.centerDkl = rgb == rgb_linear ? dkl : rgbToDkl(rgb_linear);
    e.semiAxes = semiAxesWithDkl(rgb, dkl, ecc_deg);
    return e;
}

AnalyticDiscriminationModel::AnalyticDiscriminationModel(
    const AnalyticModelParams &params)
    : params_(params)
{
    if (params_.base.minCoeff() <= 0.0)
        throw std::invalid_argument(
            "AnalyticDiscriminationModel: base semi-axes must be positive");
}

Vec3
AnalyticDiscriminationModel::semiAxes(const Vec3 &rgb_linear,
                                      double ecc_deg) const
{
    const Vec3 rgb = rgb_linear.clamped(0.0, 1.0);
    return semiAxesWithDkl(rgb, rgbToDkl(rgb), ecc_deg);
}

Vec3
AnalyticDiscriminationModel::semiAxesWithDkl(const Vec3 &rgb_linear,
                                             const Vec3 &dkl,
                                             double ecc_deg) const
{
    const Vec3 rgb = rgb_linear.clamped(0.0, 1.0);

    // Extent of each DKL axis over the RGB unit cube; the Weber term is
    // expressed relative to these so its strength is axis-uniform.
    // K1 = 0.14R + 0.17G           in [0, 0.31]
    // K2 = -0.21R - 0.71G - 0.07B  in [-0.99, 0]
    // K3 = 0.21R + 0.72G + 0.07B   in [0, 1.00]
    // Stored as reciprocals: this runs once per pixel per frame, and
    // the three divisions (plus the magic-static guard a function-local
    // const would cost) showed up in the encode profile.
    constexpr double kInvAxisRange[3] = {1.0 / 0.31, 1.0 / 0.99, 1.0};

    const double ecc = std::max(0.0, ecc_deg);
    const double ecc_scale = 1.0 + params_.eccGain * ecc;

    const double lum =
        0.2126 * rgb.x + 0.7152 * rgb.y + 0.0722 * rgb.z;
    const double lum_scale = params_.lumBias + params_.lumGain * lum;

    const double common =
        lum_scale * ecc_scale * params_.globalScale;
    Vec3 axes;
    for (std::size_t i = 0; i < 3; ++i) {
        const double chroma = std::abs(dkl[i]) * kInvAxisRange[i];
        const double weber = 1.0 + params_.weberGain * chroma;
        axes[i] = params_.base[i] * weber * common;
    }
    return axes;
}

} // namespace pce
