#include "perception/discrimination.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "color/dkl.hh"

namespace pce {

double
Ellipsoid::membership(const Vec3 &dkl) const
{
    const Vec3 d = dkl - centerDkl;
    const Vec3 n = d.cwiseDiv(semiAxes);
    return n.squaredNorm();
}

Ellipsoid
DiscriminationModel::ellipsoidFor(const Vec3 &rgb_linear,
                                  double ecc_deg) const
{
    // One DKL transform serves both the center and (for models that
    // consume it) the semi-axis evaluation. In-gamut colors — every
    // caller on the tile hot path — take the single-transform branch.
    Ellipsoid e;
    const Vec3 rgb = rgb_linear.clamped(0.0, 1.0);
    const Vec3 dkl = rgbToDkl(rgb);
    e.centerDkl = rgb == rgb_linear ? dkl : rgbToDkl(rgb_linear);
    e.semiAxes = semiAxesWithDkl(rgb, dkl, ecc_deg);
    return e;
}

AnalyticDiscriminationModel::AnalyticDiscriminationModel(
    const AnalyticModelParams &params)
    : params_(params)
{
    if (params_.base.minCoeff() <= 0.0)
        throw std::invalid_argument(
            "AnalyticDiscriminationModel: base semi-axes must be positive");
}

Vec3
AnalyticDiscriminationModel::semiAxes(const Vec3 &rgb_linear,
                                      double ecc_deg) const
{
    const Vec3 rgb = rgb_linear.clamped(0.0, 1.0);
    return semiAxesWithDkl(rgb, rgbToDkl(rgb), ecc_deg);
}

Vec3
AnalyticDiscriminationModel::semiAxesWithDkl(const Vec3 &rgb_linear,
                                             const Vec3 &dkl,
                                             double ecc_deg) const
{
    const Vec3 rgb = rgb_linear.clamped(0.0, 1.0);

    const double ecc = std::max(0.0, ecc_deg);
    const double ecc_scale = 1.0 + params_.eccGain * ecc;

    const double lum =
        0.2126 * rgb.x + 0.7152 * rgb.y + 0.0722 * rgb.z;
    const double lum_scale = params_.lumBias + params_.lumGain * lum;

    const double common =
        lum_scale * ecc_scale * params_.globalScale;
    Vec3 axes;
    for (std::size_t i = 0; i < 3; ++i) {
        const double chroma = std::abs(dkl[i]) * kDklInvAxisRange[i];
        const double weber = 1.0 + params_.weberGain * chroma;
        axes[i] = params_.base[i] * weber * common;
    }
    return axes;
}

} // namespace pce
