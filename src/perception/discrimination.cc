#include "perception/discrimination.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "color/dkl.hh"

namespace pce {

double
Ellipsoid::membership(const Vec3 &dkl) const
{
    const Vec3 d = dkl - centerDkl;
    const Vec3 n = d.cwiseDiv(semiAxes);
    return n.squaredNorm();
}

Ellipsoid
DiscriminationModel::ellipsoidFor(const Vec3 &rgb_linear,
                                  double ecc_deg) const
{
    Ellipsoid e;
    e.centerDkl = rgbToDkl(rgb_linear);
    e.semiAxes = semiAxes(rgb_linear, ecc_deg);
    return e;
}

AnalyticDiscriminationModel::AnalyticDiscriminationModel(
    const AnalyticModelParams &params)
    : params_(params)
{
    if (params_.base.minCoeff() <= 0.0)
        throw std::invalid_argument(
            "AnalyticDiscriminationModel: base semi-axes must be positive");
}

Vec3
AnalyticDiscriminationModel::semiAxes(const Vec3 &rgb_linear,
                                      double ecc_deg) const
{
    const Vec3 rgb = rgb_linear.clamped(0.0, 1.0);
    const Vec3 dkl = rgbToDkl(rgb);

    // Extent of each DKL axis over the RGB unit cube; the Weber term is
    // expressed relative to these so its strength is axis-uniform.
    // K1 = 0.14R + 0.17G           in [0, 0.31]
    // K2 = -0.21R - 0.71G - 0.07B  in [-0.99, 0]
    // K3 = 0.21R + 0.72G + 0.07B   in [0, 1.00]
    static const Vec3 kAxisRange{0.31, 0.99, 1.00};

    const double ecc = std::max(0.0, ecc_deg);
    const double ecc_scale = 1.0 + params_.eccGain * ecc;

    const double lum =
        0.2126 * rgb.x + 0.7152 * rgb.y + 0.0722 * rgb.z;
    const double lum_scale = params_.lumBias + params_.lumGain * lum;

    Vec3 axes;
    for (std::size_t i = 0; i < 3; ++i) {
        const double chroma = std::abs(dkl[i]) / kAxisRange[i];
        const double weber = 1.0 + params_.weberGain * chroma;
        axes[i] = params_.base[i] * weber * lum_scale * ecc_scale *
                  params_.globalScale;
    }
    return axes;
}

} // namespace pce
