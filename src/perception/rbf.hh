/**
 * @file
 * Gaussian Radial-Basis-Function network for Phi (paper Sec. 2.1).
 *
 * The paper deploys the discrimination model as an RBF network because it
 * "is extremely efficient to implement on GPUs in real time" (72 FPS,
 * sub-1mW on Quest 2). The trained weights of Duinkharjav et al. [22]
 * are not published, so this class *fits itself* to a reference
 * DiscriminationModel at construction: centers are placed on a grid over
 * (DKL color, eccentricity) space and per-output weights solve a ridge
 * regression against the reference model's semi-axes.
 *
 * This keeps the deployed evaluation path identical in form to the
 * paper's (a weighted sum of Gaussians per output) while the data source
 * is our analytic substitution. Tests assert the fit error against the
 * reference model is small over the whole input domain.
 */

#ifndef PCE_PERCEPTION_RBF_HH
#define PCE_PERCEPTION_RBF_HH

#include <array>
#include <cstddef>
#include <vector>

#include "perception/discrimination.hh"

namespace pce {

/** Fitting/evaluation configuration for the RBF network. */
struct RbfNetworkParams
{
    /** Grid resolution of the RBF centers per RGB channel. */
    int colorGrid = 4;
    /** Number of eccentricity center rings. */
    int eccGrid = 4;
    /** Maximum eccentricity covered by the fit, degrees. */
    double maxEccDeg = 50.0;
    /** Gaussian width multiplier relative to center spacing. */
    double widthScale = 1.4;
    /** Ridge regularization weight for the fit. */
    double ridgeLambda = 1e-8;
    /** Training samples per input dimension. */
    int trainGrid = 7;
};

/**
 * Gaussian RBF network mapping (linear RGB color, eccentricity) to DKL
 * semi-axes. The network predicts log(semi-axis) per output so that
 * predictions are always positive after exponentiation.
 */
class RbfDiscriminationModel : public DiscriminationModel
{
  public:
    /**
     * Fit a network to @p reference over the full RGB cube and the
     * eccentricity range [0, params.maxEccDeg].
     */
    RbfDiscriminationModel(const DiscriminationModel &reference,
                           const RbfNetworkParams &params = {});

    Vec3 semiAxes(const Vec3 &rgb_linear, double ecc_deg) const override;

    /** Number of RBF centers (network size). */
    std::size_t centerCount() const { return centers_.size(); }

    /**
     * Root-mean-square relative error of the fit against a reference
     * model on a fresh evaluation grid; used by tests and reported by
     * the calibration example.
     */
    double relativeRmsError(const DiscriminationModel &reference,
                            int eval_grid = 5) const;

  private:
    /** A center in normalized 4-D input space (r, g, b, ecc). */
    struct Center
    {
        std::array<double, 4> pos;
        double invTwoSigmaSq;
    };

    /** Gaussian activations of all centers at a normalized input. */
    void activations(const std::array<double, 4> &in,
                     std::vector<double> &phi) const;

    std::array<double, 4> normalizeInput(const Vec3 &rgb,
                                         double ecc_deg) const;

    RbfNetworkParams params_;
    std::vector<Center> centers_;
    /** weights_[k] holds one weight per center plus a bias, per output. */
    std::array<std::vector<double>, 3> weights_;
};

} // namespace pce

#endif // PCE_PERCEPTION_RBF_HH
