#include "perception/display.hh"

#include <algorithm>
#include <cmath>

namespace pce {

double
DisplayGeometry::focalPixels() const
{
    const double half_fov_rad = horizontalFovDeg * M_PI / 180.0 / 2.0;
    return (width / 2.0) / std::tan(half_fov_rad);
}

double
DisplayGeometry::eccentricityDeg(double x, double y) const
{
    const double f = focalPixels();
    // Rays from the eye through the display plane at distance f.
    const Vec3 gaze(fixationX - width / 2.0, fixationY - height / 2.0, f);
    const Vec3 pix(x - width / 2.0, y - height / 2.0, f);
    const double cosang =
        std::clamp(gaze.dot(pix) / (gaze.norm() * pix.norm()), -1.0, 1.0);
    return std::acos(cosang) * 180.0 / M_PI;
}

double
DisplayGeometry::maxEccentricityDeg() const
{
    double m = 0.0;
    const double xs[] = {0.0, static_cast<double>(width - 1)};
    const double ys[] = {0.0, static_cast<double>(height - 1)};
    for (double x : xs)
        for (double y : ys)
            m = std::max(m, eccentricityDeg(x, y));
    return m;
}

EccentricityMap::EccentricityMap(const DisplayGeometry &geom)
    : width_(0), height_(0), fixationX_(0.0), fixationY_(0.0)
{
    rebuild(geom);
}

void
EccentricityMap::rebuild(const DisplayGeometry &geom)
{
    width_ = geom.width;
    height_ = geom.height;
    fixationX_ = geom.fixationX;
    fixationY_ = geom.fixationY;
    // resize() keeps the capacity (and skips the redundant fill when
    // the size is unchanged): a same-size rebuild — the per-frame
    // re-fixation fallback — never reallocates.
    ecc_.resize(static_cast<std::size_t>(width_) * height_);
    for (int y = 0; y < height_; ++y)
        for (int x = 0; x < width_; ++x)
            ecc_[static_cast<std::size_t>(y) * width_ + x] =
                geom.eccentricityDeg(x, y);
}

double
EccentricityMap::minInRect(const TileRect &rect) const
{
    const int x1 = rect.x0 + rect.w - 1;
    const int y1 = rect.y0 + rect.h - 1;
    double m = 1e300;

    // Fixation inside (with half-pixel slack): the interior can hold
    // the minimum — scan everything. At most one tile per frame.
    if (fixationX_ >= rect.x0 - 0.5 && fixationX_ <= x1 + 0.5 &&
        fixationY_ >= rect.y0 - 0.5 && fixationY_ <= y1 + 0.5) {
        for (int y = rect.y0; y <= y1; ++y)
            for (int x = rect.x0; x <= x1; ++x)
                m = std::min(m, at(x, y));
        return m;
    }

    // Otherwise the minimum lies on the boundary (see header).
    for (int x = rect.x0; x <= x1; ++x) {
        m = std::min(m, at(x, rect.y0));
        m = std::min(m, at(x, y1));
    }
    for (int y = rect.y0; y <= y1; ++y) {
        m = std::min(m, at(rect.x0, y));
        m = std::min(m, at(x1, y));
    }
    return m;
}

double
EccentricityMap::fractionBeyond(double deg) const
{
    if (ecc_.empty())
        return 0.0;
    const auto n = static_cast<double>(
        std::count_if(ecc_.begin(), ecc_.end(),
                      [deg](double e) { return e > deg; }));
    return n / static_cast<double>(ecc_.size());
}

} // namespace pce
