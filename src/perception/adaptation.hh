/**
 * @file
 * Dark adaptation extension (paper Sec. 7, related work / future
 * direction): "Dark adaptation will likely weaken the color
 * discrimination even more, potentially further improving the
 * compression rate".
 *
 * In a dim viewing environment the visual system adapts away from
 * photopic vision and chromatic discrimination degrades, so the
 * discrimination ellipsoids grow beyond the photopic model. This
 * wrapper applies a luminance-adaptation boost to any inner model:
 *
 *   boost = min(maxBoost, 1 + gain * log10(referenceLuminance / L_a))
 *
 * for ambient luminance L_a below the photopic reference (no boost at
 * or above it). The logarithmic form follows the classic adaptation
 * literature (threshold-versus-intensity curves are near-linear in
 * log-log coordinates over the mesopic range).
 */

#ifndef PCE_PERCEPTION_ADAPTATION_HH
#define PCE_PERCEPTION_ADAPTATION_HH

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "perception/discrimination.hh"

namespace pce {

/** Adaptation-boost constants. */
struct DarkAdaptationParams
{
    /** Photopic reference ambient, cd/m^2 (typical indoor display). */
    double referenceLuminanceCdM2 = 100.0;
    /** Boost per decade of ambient dimming. */
    double gainPerDecade = 0.35;
    /** Saturation of the boost (scotopic floor). */
    double maxBoost = 2.5;
};

/** A DiscriminationModel wrapper with dark-adaptation boost. */
class DarkAdaptationModel : public DiscriminationModel
{
  public:
    /**
     * @param inner   Photopic discrimination model (must outlive this).
     * @param ambient_cdm2 Current ambient/display luminance, cd/m^2.
     * @param params  Boost constants.
     */
    DarkAdaptationModel(const DiscriminationModel &inner,
                        double ambient_cdm2,
                        const DarkAdaptationParams &params = {})
        : inner_(inner), params_(params)
    {
        if (ambient_cdm2 <= 0.0)
            throw std::invalid_argument(
                "DarkAdaptationModel: ambient must be positive");
        const double decades =
            std::log10(params_.referenceLuminanceCdM2 / ambient_cdm2);
        boost_ = std::clamp(1.0 + params_.gainPerDecade *
                                      std::max(0.0, decades),
                            1.0, params_.maxBoost);
    }

    /** The adaptation boost applied to the inner model's semi-axes. */
    double boost() const { return boost_; }

    Vec3
    semiAxes(const Vec3 &rgb_linear, double ecc_deg) const override
    {
        return inner_.semiAxes(rgb_linear, ecc_deg) * boost_;
    }

  private:
    const DiscriminationModel &inner_;
    DarkAdaptationParams params_;
    double boost_ = 1.0;
};

} // namespace pce

#endif // PCE_PERCEPTION_ADAPTATION_HH
