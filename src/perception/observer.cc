#include "perception/observer.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "color/dkl.hh"

namespace pce {

namespace {

/** Per-pixel luminance of a linear-RGB image. */
std::vector<double>
luminanceMap(const ImageF &img)
{
    std::vector<double> lum(img.pixelCount());
    for (int y = 0; y < img.height(); ++y)
        for (int x = 0; x < img.width(); ++x) {
            const Vec3 &p = img.at(x, y);
            lum[static_cast<std::size_t>(y) * img.width() + x] =
                0.2126 * p.x + 0.7152 * p.y + 0.0722 * p.z;
        }
    return lum;
}

/**
 * Luminance max-min over the 5x5 neighborhood (contrast masking). The
 * support is at least the BD tile radius so that pixels whose movement
 * was caused by an edge elsewhere in their tile still see that edge.
 */
double
localRange(const std::vector<double> &lum, int w, int h, int x, int y)
{
    double lo = 1e300;
    double hi = -1e300;
    for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
            const int xx = std::clamp(x + dx, 0, w - 1);
            const int yy = std::clamp(y + dy, 0, h - 1);
            const double v =
                lum[static_cast<std::size_t>(yy) * w + xx];
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    return hi - lo;
}

} // namespace

std::vector<uint8_t>
SimulatedObserver::violationMask(const ImageF &original,
                                 const ImageF &adjusted,
                                 const EccentricityMap &ecc,
                                 const DiscriminationModel &model) const
{
    if (original.width() != adjusted.width() ||
        original.height() != adjusted.height())
        throw std::invalid_argument("SimulatedObserver: size mismatch");

    const int w = original.width();
    const int h = original.height();
    std::vector<uint8_t> mask(static_cast<std::size_t>(w) * h, 0);
    const std::vector<double> lum = luminanceMap(original);

    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const Vec3 &orig = original.at(x, y);
            const Vec3 &adj = adjusted.at(x, y);
            if (orig == adj)
                continue;

            const double e = ecc.at(x, y);
            const double pixel_lum =
                lum[static_cast<std::size_t>(y) * w + x];
            // True thresholds fall below the population model in dark
            // regions (Sec. 6.3 finding), scaled per observer, widened
            // by the in-scene detection margin, and widened further
            // where local contrast masks the error (5x5 support).
            const double dark =
                1.0 - params_.darkErrorGain * (1.0 - pixel_lum) *
                          (1.0 - pixel_lum);
            const double masking =
                1.0 + params_.maskingGain *
                          localRange(lum, w, h, x, y);
            const double scale =
                std::max(1e-3, params_.detectionMargin *
                                   thresholdScale_ * dark * masking);

            Ellipsoid personal = model.ellipsoidFor(orig, e);
            personal.semiAxes = personal.semiAxes * scale;
            if (!personal.contains(rgbToDkl(adj)))
                mask[static_cast<std::size_t>(y) * w + x] = 1;
        }
    }
    return mask;
}

bool
SimulatedObserver::noticesArtifact(const ImageF &original,
                                   const ImageF &adjusted,
                                   const EccentricityMap &ecc,
                                   const DiscriminationModel &model) const
{
    const auto mask = violationMask(original, adjusted, ecc, model);
    const int w = original.width();
    const int h = original.height();
    const int win = std::max(1, params_.windowSize);
    const double need = params_.clusterFraction;

    for (int y0 = 0; y0 < h; y0 += win) {
        for (int x0 = 0; x0 < w; x0 += win) {
            const int x1 = std::min(x0 + win, w);
            const int y1 = std::min(y0 + win, h);
            int count = 0;
            for (int y = y0; y < y1; ++y)
                for (int x = x0; x < x1; ++x)
                    count += mask[static_cast<std::size_t>(y) * w + x];
            const int pixels = (x1 - x0) * (y1 - y0);
            if (count >= need * pixels && count > 0)
                return true;
        }
    }
    return false;
}

double
SimulatedObserver::supraThresholdFraction(
    const ImageF &original, const ImageF &adjusted,
    const EccentricityMap &ecc, const DiscriminationModel &model) const
{
    const auto mask = violationMask(original, adjusted, ecc, model);
    if (mask.empty())
        return 0.0;
    const auto n = std::count(mask.begin(), mask.end(), uint8_t(1));
    return static_cast<double>(n) / static_cast<double>(mask.size());
}

std::vector<SimulatedObserver>
drawObserverPopulation(const ObserverPopulationParams &params)
{
    Rng rng(params.seed);
    std::vector<SimulatedObserver> pop;
    pop.reserve(params.participants);
    for (int i = 0; i < params.participants; ++i) {
        const double scale = rng.lognormal(0.0, params.scaleSigma);
        pop.emplace_back(scale, params);
    }
    return pop;
}

UserStudyResult
runUserStudy(const std::vector<SimulatedObserver> &population,
             const ImageF &original, const ImageF &adjusted,
             const EccentricityMap &ecc, const DiscriminationModel &model)
{
    UserStudyResult result;
    result.participants = static_cast<int>(population.size());
    double supra_sum = 0.0;
    for (const auto &obs : population) {
        if (!obs.noticesArtifact(original, adjusted, ecc, model))
            ++result.noArtifactCount;
        supra_sum +=
            obs.supraThresholdFraction(original, adjusted, ecc, model);
    }
    result.meanSupraFraction =
        population.empty() ? 0.0
                           : supra_sum / static_cast<double>(
                                             population.size());
    return result;
}

} // namespace pce
