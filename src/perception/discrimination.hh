/**
 * @file
 * Eccentricity-dependent color-discrimination model (paper Sec. 2.1).
 *
 * The paper's function Phi maps (color kappa, eccentricity e) to the
 * semi-axis lengths (a, b, c) of the discrimination ellipsoid of kappa in
 * DKL space (Eq. 3-4): every color within the ellipsoid is perceptually
 * indistinguishable from kappa at that eccentricity.
 *
 * The authors use the RBF network of Duinkharjav et al. [22], fit to
 * psychophysical measurements; those trained weights are not published.
 * Our substitution (see DESIGN.md) is an *analytic* model engineered to
 * reproduce every property the encoder exploits:
 *
 *  1. semi-axes grow (roughly linearly) with eccentricity (Fig. 2);
 *  2. in linear RGB the ellipsoids are elongated along the Red or Blue
 *     axis and tightest along Green (the Sec. 3.2 relaxation rests on
 *     this);
 *  3. Weber-like growth with chromatic magnitude and luminance;
 *  4. foveal thresholds on the order of one 8-bit quantization step.
 *
 * src/perception/rbf.hh additionally provides a genuine Gaussian RBF
 * network fit to this model so that the *deployed* evaluation path has
 * the same form as the paper's.
 */

#ifndef PCE_PERCEPTION_DISCRIMINATION_HH
#define PCE_PERCEPTION_DISCRIMINATION_HH

#include "common/vec3.hh"

namespace pce {

/**
 * An axis-aligned discrimination ellipsoid in DKL space (paper Eq. 4):
 * (x-k1)^2/a^2 + (y-k2)^2/b^2 + (z-k3)^2/c^2 = 1.
 */
struct Ellipsoid
{
    /** Center color in DKL space. */
    Vec3 centerDkl;
    /** Semi-axis lengths (a, b, c) along the DKL axes. All positive. */
    Vec3 semiAxes;

    /**
     * Signed membership: <= 1 inside, 1 on the surface, > 1 outside.
     * This is the left-hand side of Eq. 4.
     */
    double membership(const Vec3 &dkl) const;

    /** True if the DKL point lies inside or on the ellipsoid. */
    bool contains(const Vec3 &dkl, double tol = 1e-9) const
    { return membership(dkl) <= 1.0 + tol; }
};

/**
 * Interface for Phi (Eq. 3): (kappa, e) -> semi-axes in DKL.
 *
 * Implementations must be thread-compatible (const evaluation).
 */
class DiscriminationModel
{
  public:
    virtual ~DiscriminationModel() = default;

    /**
     * Evaluate the semi-axes for a color at an eccentricity.
     *
     * @param rgb_linear Color in linear RGB, components in [0,1].
     * @param ecc_deg    Eccentricity in degrees (>= 0).
     * @return Semi-axes (a, b, c) of the DKL discrimination ellipsoid.
     */
    virtual Vec3 semiAxes(const Vec3 &rgb_linear, double ecc_deg) const = 0;

    /**
     * semiAxes() with the DKL transform of @p rgb_linear already in
     * hand. ellipsoidFor() computes the DKL center anyway, and models
     * whose evaluation starts with the same transform (the analytic
     * model does) override this to avoid recomputing it — the tile loop
     * calls this once per pixel. The default ignores @p dkl, so models
     * that never look at DKL stay correct unchanged.
     *
     * @param rgb_linear Color in linear RGB, components in [0,1].
     * @param dkl        rgbToDkl(rgb_linear), supplied by the caller.
     */
    virtual Vec3
    semiAxesWithDkl(const Vec3 &rgb_linear, const Vec3 &dkl,
                    double ecc_deg) const
    {
        (void)dkl;
        return semiAxes(rgb_linear, ecc_deg);
    }

    /** Convenience: build the full ellipsoid for a linear-RGB color. */
    Ellipsoid ellipsoidFor(const Vec3 &rgb_linear, double ecc_deg) const;
};

/**
 * Reciprocal extents of the DKL axes over the RGB unit cube; the
 * analytic model's Weber term is expressed relative to these so its
 * strength is axis-uniform:
 *   K1 = 0.14R + 0.17G           in [0, 0.31]
 *   K2 = -0.21R - 0.71G - 0.07B  in [-0.99, 0]
 *   K3 = 0.21R + 0.72G + 0.07B   in [0, 1.00]
 * Stored as reciprocals (the evaluation runs once per pixel per frame)
 * and shared between the scalar model and the SIMD kernel layer
 * (src/simd), whose bit-identity contract requires the same constants.
 */
inline constexpr double kDklInvAxisRange[3] = {1.0 / 0.31, 1.0 / 0.99,
                                               1.0};

/** Tunable constants of the analytic model. */
struct AnalyticModelParams
{
    /**
     * Base DKL semi-axes at zero eccentricity for a mid-gray color.
     * Components correspond to the (K1, K2, K3) DKL axes. Defaults are
     * calibrated so the linear-RGB ellipsoid extents at 25 deg
     * eccentricity are ~0.04 (R) / ~0.012 (G) / ~0.08 (B), matching the
     * qualitative sizes of the paper's Fig. 2.
     */
    Vec3 base{2.0e-3, 3.2e-5, 3.2e-5};

    /** Linear eccentricity growth rate per degree (Fig. 2 trend). */
    double eccGain = 0.075;

    /** Weber-like growth with per-axis chromatic magnitude. */
    double weberGain = 0.9;

    /** Luminance scaling: thresholds scale with lumBias + lumGain * Y. */
    double lumBias = 0.4;
    double lumGain = 0.8;

    /** Global scale knob (used by per-user calibration, Sec. 6.5). */
    double globalScale = 1.0;
};

/** The analytic eccentricity-dependent discrimination model. */
class AnalyticDiscriminationModel : public DiscriminationModel
{
  public:
    explicit AnalyticDiscriminationModel(
        const AnalyticModelParams &params = {});

    Vec3 semiAxes(const Vec3 &rgb_linear, double ecc_deg) const override;

    Vec3 semiAxesWithDkl(const Vec3 &rgb_linear, const Vec3 &dkl,
                         double ecc_deg) const override;

    const AnalyticModelParams &params() const { return params_; }

  private:
    AnalyticModelParams params_;
};

/**
 * A model wrapper that scales another model's semi-axes by a constant
 * factor; used for per-user calibration (Sec. 6.5) and for the simulated
 * observers (Sec. 5.2).
 */
class ScaledDiscriminationModel : public DiscriminationModel
{
  public:
    ScaledDiscriminationModel(const DiscriminationModel &inner, double scale)
        : inner_(inner), scale_(scale)
    {}

    Vec3
    semiAxes(const Vec3 &rgb_linear, double ecc_deg) const override
    {
        return inner_.semiAxes(rgb_linear, ecc_deg) * scale_;
    }

    Vec3
    semiAxesWithDkl(const Vec3 &rgb_linear, const Vec3 &dkl,
                    double ecc_deg) const override
    {
        return inner_.semiAxesWithDkl(rgb_linear, dkl, ecc_deg) * scale_;
    }

    double scale() const { return scale_; }

  private:
    const DiscriminationModel &inner_;
    double scale_;
};

} // namespace pce

#endif // PCE_PERCEPTION_DISCRIMINATION_HH
