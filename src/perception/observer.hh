/**
 * @file
 * Simulated psychophysics: observer population and artifact detection.
 *
 * The paper runs an IRB-approved study on 11 participants (Sec. 5.2) and
 * reports, per scene, how many noticed no artifacts (Fig. 14). We cannot
 * run humans, so this module substitutes a simulated observer population
 * built from the paper's own findings:
 *
 *  - *Observer variation* (Sec. 6.3): per-observer discrimination
 *    thresholds scale by a lognormal factor around the population model;
 *    the "visual artist with color-sensitive eyes" is a low-scale draw.
 *  - *Low-luminance model error* (Sec. 6.3): the paper finds dark scenes
 *    (dumbo, monkey) show the most artifacts and calls for better
 *    low-luminance models. We model this as the population model
 *    overestimating true thresholds in dark regions, so encoders driven
 *    by the model overshoot precisely there.
 *  - *Spatial pooling*: a single supra-threshold pixel is invisible; a
 *    cluster is not. An observer notices when any window accumulates
 *    enough supra-threshold pixels.
 */

#ifndef PCE_PERCEPTION_OBSERVER_HH
#define PCE_PERCEPTION_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "image/image.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"

namespace pce {

/** Population / detection constants for the simulated study. */
struct ObserverPopulationParams
{
    /** Lognormal sigma of the per-observer threshold scale. */
    double scaleSigma = 0.20;
    /**
     * In-scene detection margin: psychophysical discrimination
     * ellipsoids are measured with forced-choice presentations; inside
     * a complex scene, spatial masking and attention raise effective
     * tolerance. A color within detectionMargin x the model ellipsoid
     * is invisible to the average observer in-scene. The encoder parks
     * extremal pixels exactly on the model boundary (that is the
     * optimum), so this margin is what separates "at threshold" from
     * "visibly wrong".
     */
    double detectionMargin = 1.9;
    /**
     * Dark-region model error: true thresholds are
     * (1 - darkErrorGain * (1 - Y)^2) of the population model, so the
     * model-driven encoder overshoots in dark regions (the paper's
     * Sec. 6.3 finding: dumbo/monkey show the most artifacts).
     */
    double darkErrorGain = 0.83;
    /**
     * Contrast (texture) masking: tolerance grows with local luminance
     * contrast, the standard spatial-masking effect of the HVS. The
     * per-pixel threshold scale is multiplied by
     * (1 + maskingGain * local luminance range in a 5x5 window), so
     * errors hugging hard edges are forgiven while the same error on a
     * smooth ramp is not.
     */
    double maskingGain = 2.5;
    /** Window edge (pixels) for spatial pooling of violations. */
    int windowSize = 32;
    /**
     * Fraction of window pixels that must exceed threshold before the
     * window is visible as an artifact.
     */
    double clusterFraction = 0.02;
    /** Number of simulated participants (the paper recruited 11). */
    int participants = 11;
    /** RNG seed for the population draw. */
    uint64_t seed = 0x5eed0b5e;
};

/** One simulated participant. */
class SimulatedObserver
{
  public:
    SimulatedObserver(double threshold_scale,
                      const ObserverPopulationParams &params)
        : thresholdScale_(threshold_scale), params_(params)
    {}

    /** The personal threshold scale (1 = population average). */
    double thresholdScale() const { return thresholdScale_; }

    /**
     * Whether this observer notices any artifact between the original
     * and the adjusted frame.
     *
     * @param original  Pre-adjustment linear-RGB frame.
     * @param adjusted  Post-adjustment linear-RGB frame (same size).
     * @param ecc       Per-pixel eccentricity map (same size).
     * @param model     Population discrimination model the encoder used.
     */
    bool noticesArtifact(const ImageF &original, const ImageF &adjusted,
                         const EccentricityMap &ecc,
                         const DiscriminationModel &model) const;

    /**
     * Fraction of pixels whose adjustment exceeds this observer's
     * personal ellipsoid (diagnostic; not spatially pooled).
     */
    double supraThresholdFraction(const ImageF &original,
                                  const ImageF &adjusted,
                                  const EccentricityMap &ecc,
                                  const DiscriminationModel &model) const;

  private:
    /** Per-pixel 0/1 violation mask. */
    std::vector<uint8_t>
    violationMask(const ImageF &original, const ImageF &adjusted,
                  const EccentricityMap &ecc,
                  const DiscriminationModel &model) const;

    double thresholdScale_;
    ObserverPopulationParams params_;
};

/** Result of a simulated user study on one scene. */
struct UserStudyResult
{
    int participants = 0;
    /** Participants who did NOT notice any artifact (Fig. 14 y-axis). */
    int noArtifactCount = 0;
    /** Mean supra-threshold pixel fraction across participants. */
    double meanSupraFraction = 0.0;
};

/** Draw a deterministic population of simulated observers. */
std::vector<SimulatedObserver>
drawObserverPopulation(const ObserverPopulationParams &params);

/** Run the full population over one original/adjusted frame pair. */
UserStudyResult
runUserStudy(const std::vector<SimulatedObserver> &population,
             const ImageF &original, const ImageF &adjusted,
             const EccentricityMap &ecc, const DiscriminationModel &model);

} // namespace pce

#endif // PCE_PERCEPTION_OBSERVER_HH
