#include "perception/rbf.hh"

#include <cmath>
#include <stdexcept>

#include "common/linsolve.hh"

namespace pce {

RbfDiscriminationModel::RbfDiscriminationModel(
    const DiscriminationModel &reference, const RbfNetworkParams &params)
    : params_(params)
{
    if (params_.colorGrid < 2 || params_.eccGrid < 2)
        throw std::invalid_argument("RbfDiscriminationModel: grid too small");

    // Place centers on a regular grid in normalized (r, g, b, ecc) space.
    const int cg = params_.colorGrid;
    const int eg = params_.eccGrid;
    const double color_spacing = 1.0 / (cg - 1);
    const double ecc_spacing = 1.0 / (eg - 1);
    // A single isotropic width derived from the larger spacing keeps the
    // design matrix well conditioned.
    const double sigma =
        params_.widthScale * std::max(color_spacing, ecc_spacing);
    const double inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);

    for (int r = 0; r < cg; ++r) {
        for (int g = 0; g < cg; ++g) {
            for (int b = 0; b < cg; ++b) {
                for (int e = 0; e < eg; ++e) {
                    Center c;
                    c.pos = {r * color_spacing, g * color_spacing,
                             b * color_spacing, e * ecc_spacing};
                    c.invTwoSigmaSq = inv_two_sigma_sq;
                    centers_.push_back(c);
                }
            }
        }
    }

    // Training samples on a denser grid.
    const int tg = params_.trainGrid;
    std::vector<std::array<double, 4>> inputs;
    std::array<std::vector<double>, 3> targets;
    for (int r = 0; r < tg; ++r) {
        for (int g = 0; g < tg; ++g) {
            for (int b = 0; b < tg; ++b) {
                for (int e = 0; e < tg; ++e) {
                    const Vec3 rgb(r / double(tg - 1), g / double(tg - 1),
                                   b / double(tg - 1));
                    const double ecc =
                        e / double(tg - 1) * params_.maxEccDeg;
                    const Vec3 axes = reference.semiAxes(rgb, ecc);
                    inputs.push_back(
                        normalizeInput(rgb, ecc));
                    for (std::size_t k = 0; k < 3; ++k)
                        targets[k].push_back(std::log(axes[k]));
                }
            }
        }
    }

    // Design matrix: one activation per center plus a constant bias.
    const std::size_t n_samples = inputs.size();
    const std::size_t n_feat = centers_.size() + 1;
    DenseMatrix design(n_samples, n_feat);
    std::vector<double> phi;
    for (std::size_t s = 0; s < n_samples; ++s) {
        activations(inputs[s], phi);
        for (std::size_t j = 0; j < centers_.size(); ++j)
            design(s, j) = phi[j];
        design(s, n_feat - 1) = 1.0;
    }

    for (std::size_t k = 0; k < 3; ++k)
        weights_[k] =
            ridgeLeastSquares(design, targets[k], params_.ridgeLambda);
}

std::array<double, 4>
RbfDiscriminationModel::normalizeInput(const Vec3 &rgb, double ecc_deg) const
{
    const Vec3 c = rgb.clamped(0.0, 1.0);
    double e = ecc_deg / params_.maxEccDeg;
    e = e < 0.0 ? 0.0 : (e > 1.0 ? 1.0 : e);
    return {c.x, c.y, c.z, e};
}

void
RbfDiscriminationModel::activations(const std::array<double, 4> &in,
                                    std::vector<double> &phi) const
{
    phi.resize(centers_.size());
    for (std::size_t j = 0; j < centers_.size(); ++j) {
        const auto &c = centers_[j];
        double d2 = 0.0;
        for (std::size_t k = 0; k < 4; ++k) {
            const double d = in[k] - c.pos[k];
            d2 += d * d;
        }
        phi[j] = std::exp(-d2 * c.invTwoSigmaSq);
    }
}

Vec3
RbfDiscriminationModel::semiAxes(const Vec3 &rgb_linear,
                                 double ecc_deg) const
{
    const auto in = normalizeInput(rgb_linear, ecc_deg);
    std::vector<double> phi;
    activations(in, phi);
    Vec3 out;
    for (std::size_t k = 0; k < 3; ++k) {
        double acc = weights_[k].back();  // bias
        for (std::size_t j = 0; j < phi.size(); ++j)
            acc += weights_[k][j] * phi[j];
        out[k] = std::exp(acc);
    }
    return out;
}

double
RbfDiscriminationModel::relativeRmsError(
    const DiscriminationModel &reference, int eval_grid) const
{
    double sum = 0.0;
    std::size_t n = 0;
    const int tg = eval_grid;
    for (int r = 0; r < tg; ++r) {
        for (int g = 0; g < tg; ++g) {
            for (int b = 0; b < tg; ++b) {
                for (int e = 0; e < tg; ++e) {
                    const Vec3 rgb(r / double(tg - 1), g / double(tg - 1),
                                   b / double(tg - 1));
                    const double ecc =
                        e / double(tg - 1) * params_.maxEccDeg;
                    const Vec3 want = reference.semiAxes(rgb, ecc);
                    const Vec3 got = semiAxes(rgb, ecc);
                    for (std::size_t k = 0; k < 3; ++k) {
                        const double rel = (got[k] - want[k]) / want[k];
                        sum += rel * rel;
                        ++n;
                    }
                }
            }
        }
    }
    return std::sqrt(sum / static_cast<double>(n));
}

} // namespace pce
