# Build-time git revision stamp. Run as `cmake -DOUT=... -DSRC=... -P`
# from a custom target on every build; the header is rewritten only
# when the revision actually changes, so incremental builds don't churn
# dependents, but records appended by encoder_runner always carry the
# revision of the sources the binary was built from (a configure-time
# cache would go stale across commits).
execute_process(COMMAND git rev-parse --short HEAD
                WORKING_DIRECTORY ${SRC}
                OUTPUT_VARIABLE PCE_REV
                OUTPUT_STRIP_TRAILING_WHITESPACE
                ERROR_QUIET)
if(NOT PCE_REV)
  set(PCE_REV "unknown")
endif()
set(PCE_REV_CONTENT "#define PCE_GIT_REV \"${PCE_REV}\"\n")
set(PCE_REV_OLD "")
if(EXISTS ${OUT})
  file(READ ${OUT} PCE_REV_OLD)
endif()
if(NOT PCE_REV_OLD STREQUAL PCE_REV_CONTENT)
  file(WRITE ${OUT} "${PCE_REV_CONTENT}")
endif()
