/**
 * @file
 * net_delivery: an animated clip encoded through the EncodeService
 * and shipped over a seeded lossy channel (src/net) — the "my frames
 * cross a real network" view of the library.
 *
 *   $ ./example_net_delivery [loss_percent] [frames]
 *
 * Each frame is packetized on BD tile boundaries, sent foveal-first
 * through a channel that drops/reorders/duplicates/corrupts packets,
 * NACK-retransmitted under a per-frame deadline, and reassembled with
 * graceful degradation: missing peripheral tiles fall back to the
 * previous frame or a flagged fill, while the foveal region is
 * protected by the send order. The per-frame report shows what a
 * deployment would monitor. At 0% loss delivery is byte-identical.
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "net/delivery.hh"

int
main(int argc, char **argv)
{
    using namespace pce;

    const double loss_pct = argc > 1 ? std::atof(argv[1]) : 10.0;
    const int frames = argc > 2 ? std::atoi(argv[2]) : 8;
    const int width = 256;
    const int height = 256;

    DisplayGeometry display;
    display.width = width;
    display.height = height;
    display.horizontalFovDeg = 100.0;
    display.fixationX = width / 2.0;
    display.fixationY = height / 2.0;
    const EccentricityMap ecc(display);

    const AnalyticDiscriminationModel model;
    EncodeService service(model);
    StreamHandle stream = service.openStream("skyline", ecc);

    // The network between the service and the "headset": seeded, so
    // this demo replays the same impairments every run.
    net::LossyChannelConfig channel_cfg;
    channel_cfg.dropRate = loss_pct / 100.0;
    if (loss_pct > 0) {
        channel_cfg.reorderRate = 0.10;
        channel_cfg.duplicateRate = 0.02;
        channel_cfg.corruptRate = 0.02;
    }
    channel_cfg.seed = 0xd3110;
    net::LossyChannel channel(channel_cfg);

    net::SenderPolicy policy;
    policy.sessionId = 0xd311;
    policy.streamId = 1;
    net::DeliverySession session(service, stream, channel, policy,
                                 &ecc);

    std::cout << "delivering " << frames << " frames of skyline at "
              << loss_pct << "% loss\n\n"
              << "frame  tiles delivered  foveal  retx  shed  "
                 "byte-identical\n";

    using namespace std::chrono_literals;
    ImageU8 delivered;
    for (int i = 0; i < frames; ++i) {
        RenderOptions opt;
        opt.width = width;
        opt.height = height;
        opt.time = 0.5 * i;
        session.submit(renderScene(SceneId::Skyline, opt));
        const net::DeliveryReport rep =
            session.deliverNext(delivered, 5000ms);

        std::cout << std::setw(5) << i << "  " << std::setw(9)
                  << rep.frame.deliveredTiles << " / "
                  << std::setw(4) << rep.frame.totalTiles << "  "
                  << (rep.fovealIntact ? "intact" : "DEGRADED")
                  << "  " << std::setw(4) << rep.retransmittedPackets
                  << "  " << std::setw(4) << rep.shedTiles << "  "
                  << (rep.frame.byteIdentical ? "yes" : "no") << "\n";
    }

    const net::FrameReassembler &rx = session.receiver();
    std::cout << "\nreceiver totals: " << rx.packetsAccepted()
              << " packets accepted, " << rx.duplicatePackets()
              << " duplicates, " << rx.rejectedPackets()
              << " rejected (CRC/session/malformed)\n";
    return 0;
}
