/**
 * @file
 * vr_pipeline: a full VR frame loop — stereo rendering, per-eye
 * perceptual encoding, DRAM traffic accounting, and the system-level
 * power model of Fig. 13, over an animated 2-second clip.
 *
 *   $ ./vr_pipeline [scene] [frames]
 *
 * scene is one of: office fortnite skyline dumbo thai monkey.
 * This is the "what would my headset save" view of the library.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bd/bd_codec.hh"
#include "core/pipeline.hh"
#include "hw/cau_model.hh"
#include "hw/dram_model.hh"
#include "metrics/report.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"
#include "render/scenes.hh"

namespace {

pce::SceneId
sceneByName(const char *name)
{
    for (pce::SceneId id : pce::allScenes())
        if (std::strcmp(pce::sceneName(id), name) == 0)
            return id;
    throw std::runtime_error(std::string("unknown scene: ") + name);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pce;

    const SceneId scene =
        argc > 1 ? sceneByName(argv[1]) : SceneId::Skyline;
    const int frames = argc > 2 ? std::atoi(argv[2]) : 8;
    const int width = 512;
    const int height = 512;
    const double fps = 72.0;

    DisplayGeometry display;
    display.width = width;
    display.height = height;
    display.horizontalFovDeg = 100.0;
    display.fixationX = width / 2.0;
    display.fixationY = height / 2.0;
    const EccentricityMap ecc(display);

    const AnalyticDiscriminationModel model;
    PipelineParams params;
    params.threads = 4;
    const PerceptualEncoder encoder(model, params);
    const BdCodec bd(4);
    const CauModel cau;
    const DramModel dram;

    std::cout << "scene " << sceneName(scene) << ", " << frames
              << " stereo frames @ " << width << "x" << height
              << " per eye, " << fps << " FPS\n\n";

    TextTable table("per-frame traffic (KB, both eyes)");
    table.setHeader({"frame", "raw", "BD", "ours", "ours vs BD"});

    double bd_bytes_sum = 0.0;
    double ours_bytes_sum = 0.0;
    for (int f = 0; f < frames; ++f) {
        const double t = f / fps;
        const StereoFrame stereo = renderStereo(scene, width, height, t);
        double bd_bits = 0.0;
        double ours_bits = 0.0;
        for (const ImageF *eye : {&stereo.left, &stereo.right}) {
            bd_bits += static_cast<double>(
                bd.analyze(toSrgb8(*eye)).totalBits());
            ours_bits += static_cast<double>(
                encoder.encodeFrame(*eye, ecc).bdStats.totalBits());
        }
        const double raw_kb = 2.0 * width * height * 3.0 / 1024.0;
        const double bd_kb = bd_bits / 8.0 / 1024.0;
        const double ours_kb = ours_bits / 8.0 / 1024.0;
        bd_bytes_sum += bd_bits / 8.0;
        ours_bytes_sum += ours_bits / 8.0;
        table.addRow({std::to_string(f), fmtDouble(raw_kb, 0),
                      fmtDouble(bd_kb, 0), fmtDouble(ours_kb, 0),
                      fmtDouble(100.0 * (1.0 - ours_kb / bd_kb), 1) +
                          "%"});
    }
    table.print(std::cout);

    const double bd_frame = bd_bytes_sum / frames;
    const double ours_frame = ours_bytes_sum / frames;
    const double saving =
        dram.powerSavingMw(bd_frame, ours_frame, fps,
                           cau.totalPowerMw());
    std::cout << "\nsystem model at this resolution:\n";
    std::cout << "  CAU compression delay: "
              << fmtDouble(cau.compressionDelayUs(width * 2, height), 1)
              << " us of a " << fmtDouble(1e6 / fps, 0)
              << " us frame budget\n";
    std::cout << "  DRAM power saved vs BD: " << fmtDouble(saving, 1)
              << " mW (CAU overhead "
              << fmtDouble(cau.totalPowerMw() * 1e3, 1)
              << " uW already subtracted)\n";
    std::cout << "  scale to Quest-2 max mode (5408x2736 @ 120): "
              << fmtDouble(dram.powerSavingMw(
                               5408.0 * 2736.0 * (bd_frame /
                                                  (2.0 * width * height)),
                               5408.0 * 2736.0 *
                                   (ours_frame /
                                    (2.0 * width * height)),
                               120.0, cau.totalPowerMw()),
                           1)
              << " mW\n";
    return 0;
}
