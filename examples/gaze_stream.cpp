/**
 * @file
 * Eye-tracked encode-service demo: a gaze-annotated clip (frames plus
 * a synthetic scanpath with saccade jumps, pursuit drift, and tracker
 * jitter) streams through an EncodeService gaze stream. The service
 * re-fixates each stream's eccentricity map incrementally per frame,
 * routes saccade frames through the cheap bypass path, and — with
 * verifyRoundTrip on — decodes every stream back to prove it lossless
 * before it ships.
 *
 *   ./example_gaze_stream [scene] [frames] [size]
 */

#include <iostream>
#include <string>

#include "service/encode_service.hh"

using namespace pce;

int
main(int argc, char **argv)
{
    SceneId scene = SceneId::Office;
    if (argc > 1) {
        const std::string name = argv[1];
        bool found = false;
        for (SceneId id : allScenes())
            if (name == sceneName(id)) {
                scene = id;
                found = true;
            }
        if (!found) {
            std::cerr << "unknown scene \"" << name << "\"\n";
            return 1;
        }
    }
    const int frames = argc > 2 ? std::stoi(argv[2]) : 72;
    const int size = argc > 3 ? std::stoi(argv[3]) : 256;

    std::cout << "Rendering " << frames << " stereo frames of '"
              << sceneName(scene) << "' at " << size << "x" << size
              << " with a synthetic scanpath...\n";
    const GazeAnnotatedClip clip =
        renderGazeClip(scene, size, size, frames);

    DisplayGeometry geom;
    geom.width = size;
    geom.height = size;
    geom.fixationX = size / 2.0;
    geom.fixationY = size / 2.0;

    const AnalyticDiscriminationModel model;
    ServiceParams sp;
    sp.threads = 2;
    sp.verifyRoundTrip = true;  // decode every frame back, count
                                // corruption before it ships
    EncodeService service(model, sp);

    // One gaze stream per eye: each re-fixates its own eccentricity
    // state independently (here both eyes share the scanpath).
    StreamHandle left = service.openGazeStream("left-eye", geom);
    StreamHandle right = service.openGazeStream("right-eye", geom);

    std::size_t bytes = 0;
    for (std::size_t i = 0; i < clip.frames.size(); ++i) {
        const GazeSample &gaze = clip.gaze.samples[i];
        service.submit(left, clip.frames[i].left, gaze);
        service.submit(right, clip.frames[i].right, gaze);
        bytes += service.collect(left)->bdStream.size();
        bytes += service.collect(right)->bdStream.size();
    }
    service.drainAll();

    const ServiceReport rep = service.report();
    std::cout << "\nEncoded " << rep.framesEncoded << " frames ("
              << rep.megapixels << " MP, " << bytes / 1024.0
              << " KiB of BD streams)\n";
    for (const StreamStats &st : rep.streams) {
        std::cout << "  " << st.name << ": " << st.framesEncoded
                  << " frames, " << st.saccadeFrames
                  << " saccade-bypassed, " << st.refixations
                  << " re-fixations (" << st.fullRebuilds
                  << " full rebuilds, " << st.deferredGazeUpdates
                  << " deferred mid-saccade), verified "
                  << st.framesVerified << " with " << st.corruptFrames
                  << " corrupt\n";
    }
    std::cout << "queue peak depth " << rep.queuePeakDepth << " of "
              << rep.queueCapacity << "; total corrupt frames: "
              << rep.corruptFrames << "\n"
              << (rep.corruptFrames == 0
                      ? "every stream decodes losslessly\n"
                      : "CORRUPTION DETECTED\n");
    return rep.corruptFrames == 0 ? 0 : 1;
}
