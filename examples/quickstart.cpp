/**
 * @file
 * Quickstart: encode one VR frame with the perceptual encoder and
 * compare it against plain Base+Delta.
 *
 *   $ ./quickstart [width] [height]
 *
 * Steps shown:
 *   1. render a frame (linear RGB);
 *   2. build the display geometry and per-pixel eccentricity map;
 *   3. run the Fig. 7 pipeline (color adjustment -> sRGB -> BD);
 *   4. decode with the *stock* BD decoder and verify bit-exactness;
 *   5. print the bandwidth numbers.
 */

#include <cstdlib>
#include <iostream>

#include "bd/bd_codec.hh"
#include "core/pipeline.hh"
#include "metrics/report.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"
#include "render/scenes.hh"

int
main(int argc, char **argv)
{
    using namespace pce;

    const int width = argc > 1 ? std::atoi(argv[1]) : 640;
    const int height = argc > 2 ? std::atoi(argv[2]) : 640;

    // 1. A frame from the rendering pipeline (any linear-RGB source).
    const ImageF frame =
        renderScene(SceneId::Fortnite, {width, height, 0, 0.0, 0});

    // 2. Display geometry: wide-FoV HMD, gaze at the center.
    DisplayGeometry display;
    display.width = width;
    display.height = height;
    display.horizontalFovDeg = 100.0;
    display.fixationX = width / 2.0;
    display.fixationY = height / 2.0;
    const EccentricityMap ecc(display);

    // 3. The perceptual encoder: population discrimination model plus
    //    the standard pipeline parameters (4x4 tiles, 5-degree foveal
    //    bypass).
    const AnalyticDiscriminationModel model;
    PipelineParams params;
    params.threads = 4;
    const PerceptualEncoder encoder(model, params);
    const EncodedFrame encoded = encoder.encodeFrame(frame, ecc);

    // 4. Display path: the unmodified BD decoder reconstructs the sRGB
    //    frame exactly (our algorithm changed only the encoder input).
    const ImageU8 decoded = BdCodec::decode(encoded.bdStream);
    if (!(decoded == encoded.adjustedSrgb)) {
        std::cerr << "BUG: BD round trip failed\n";
        return 1;
    }

    // 5. Numbers.
    const BdCodec plain_bd(4);
    const ImageU8 original_srgb = toSrgb8(frame);
    const auto bd_stats = plain_bd.analyze(original_srgb);

    std::cout << "frame: " << width << "x" << height << " ("
              << sceneName(SceneId::Fortnite) << ")\n";
    std::cout << "raw:         24.00 bits/pixel\n";
    std::cout << "BD:          "
              << fmtDouble(bd_stats.bitsPerPixel(), 2)
              << " bits/pixel\n";
    std::cout << "ours:        "
              << fmtDouble(encoded.bdStats.bitsPerPixel(), 2)
              << " bits/pixel\n";
    std::cout << "vs raw:      "
              << fmtDouble(encoded.bdStats.reductionVsRawPercent(), 1)
              << "% traffic reduction\n";
    std::cout << "vs BD:       "
              << fmtDouble(reductionVsBaselinePercent(
                               encoded.bdStats.bitsPerPixel(),
                               bd_stats.bitsPerPixel()),
                           1)
              << "% traffic reduction\n";
    std::cout << "PSNR:        "
              << fmtDouble(psnr(original_srgb, encoded.adjustedSrgb), 1)
              << " dB (numerically lossy, perceptually clean)\n";
    std::cout << "tiles:       " << encoded.stats.totalTiles << " ("
              << encoded.stats.fovealBypassTiles << " foveal bypass, "
              << encoded.stats.c1Tiles << " case-1, "
              << encoded.stats.c2Tiles << " case-2)\n";
    std::cout << "decode:      stock BD decoder, bit-exact\n";
    return 0;
}
