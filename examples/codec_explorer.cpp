/**
 * @file
 * codec_explorer: compare every codec in the repository on one scene and
 * dump the images for visual inspection (the paper's Fig. 9 pair).
 *
 *   $ ./codec_explorer [scene] [outdir]
 *
 * Writes <scene>_original.ppm / .png, <scene>_adjusted.ppm (our
 * encoder's output — visibly different on a desktop display because the
 * whole image sits in your fovea, which is exactly the paper's point),
 * and <scene>_scc.ppm (SCC's representative colors).
 */

#include <cstring>
#include <filesystem>
#include <iostream>

#include "bd/bd_codec.hh"
#include "core/pipeline.hh"
#include "image/ppm.hh"
#include "metrics/report.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"
#include "png/png_codec.hh"
#include "render/scenes.hh"
#include "scc/scc_codec.hh"

namespace {

pce::SceneId
sceneByName(const char *name)
{
    for (pce::SceneId id : pce::allScenes())
        if (std::strcmp(pce::sceneName(id), name) == 0)
            return id;
    throw std::runtime_error(std::string("unknown scene: ") + name);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pce;
    namespace fs = std::filesystem;

    const SceneId scene =
        argc > 1 ? sceneByName(argv[1]) : SceneId::Thai;
    const std::string outdir = argc > 2 ? argv[2] : ".";
    const int width = 512;
    const int height = 512;

    const ImageF frame = renderScene(scene, {width, height, 0, 0.0, 0});
    const ImageU8 original = toSrgb8(frame);

    DisplayGeometry display;
    display.width = width;
    display.height = height;
    display.fixationX = width / 2.0;
    display.fixationY = height / 2.0;
    const EccentricityMap ecc(display);

    const AnalyticDiscriminationModel model;
    PipelineParams params;
    params.threads = 4;
    const PerceptualEncoder encoder(model, params);
    const EncodedFrame encoded = encoder.encodeFrame(frame, ecc);

    const SccCodebook scc(model, SccParams{8, 20.0});
    const ImageU8 scc_image = scc.decode(scc.encode(original));

    const BdCodec bd(4);
    const auto bd_stats = bd.analyze(original);
    const auto png_bytes = pngEncode(original);

    const std::string base =
        (fs::path(outdir) / sceneName(scene)).string();
    writePpm(base + "_original.ppm", original);
    writePng(base + "_original.png", original);
    writePpm(base + "_adjusted.ppm", encoded.adjustedSrgb);
    writePpm(base + "_scc.ppm", scc_image);

    TextTable table("codec comparison: " +
                    std::string(sceneName(scene)));
    table.setHeader(
        {"codec", "bits/pixel", "vs raw", "PSNR (dB)", "lossless?"});
    table.addRow({"NoCom", "24.00", "0.0%", "inf", "yes"});
    table.addRow({"PNG",
                  fmtDouble(bitsPerPixelFromBytes(png_bytes.size(),
                                                  original.pixelCount()),
                            2),
                  fmtDouble(reductionVsRawPercent(bitsPerPixelFromBytes(
                                png_bytes.size(),
                                original.pixelCount())),
                            1) +
                      "%",
                  "inf", "yes"});
    table.addRow({"BD", fmtDouble(bd_stats.bitsPerPixel(), 2),
                  fmtDouble(bd_stats.reductionVsRawPercent(), 1) + "%",
                  "inf", "yes"});
    table.addRow(
        {"SCC",
         fmtDouble(static_cast<double>(scc.bitsPerPixel()), 2),
         fmtDouble(reductionVsRawPercent(scc.bitsPerPixel()), 1) + "%",
         fmtDouble(psnr(original, scc_image), 1), "no (perceptual)"});
    table.addRow(
        {"Ours", fmtDouble(encoded.bdStats.bitsPerPixel(), 2),
         fmtDouble(encoded.bdStats.reductionVsRawPercent(), 1) + "%",
         fmtDouble(psnr(original, encoded.adjustedSrgb), 1),
         "no (perceptual)"});
    table.print(std::cout);

    std::cout << "\nwrote " << base << "_original.{ppm,png}, " << base
              << "_adjusted.ppm, " << base << "_scc.ppm\n";
    std::cout << "View original vs adjusted side by side on a desktop "
                 "display: the shift is visible there because\nthe whole "
                 "frame sits in foveal vision (paper Fig. 9); inside the "
                 "HMD it is not.\n";
    return 0;
}
