/**
 * @file
 * calibration: the Sec. 6.5 per-user story — fit an RBF network to a
 * (simulated) per-user discrimination model, check the fit, and show
 * how conservative-vs-average calibration moves the compression /
 * visibility trade-off for a sensitive user.
 *
 *   $ ./calibration [user_scale]
 *
 * user_scale < 1 models a color-sensitive user (the paper's "visual
 * artist"); > 1 a tolerant one.
 */

#include <cstdlib>
#include <iostream>

#include "bd/bd_codec.hh"
#include "core/pipeline.hh"
#include "metrics/report.hh"
#include "perception/observer.hh"
#include "perception/rbf.hh"
#include "render/scenes.hh"

int
main(int argc, char **argv)
{
    using namespace pce;

    const double user_scale = argc > 1 ? std::atof(argv[1]) : 0.6;
    const int width = 384;
    const int height = 384;

    std::cout << "simulated user threshold scale: " << user_scale
              << (user_scale < 1.0 ? " (color-sensitive)"
                                   : " (tolerant)")
              << "\n\n";

    // The user's true thresholds: population model times their scale.
    const AnalyticDiscriminationModel population;
    const ScaledDiscriminationModel user_truth(population, user_scale);

    // Calibration fits the deployable RBF network to the user's model
    // (in a real system the ground truth comes from a short
    // psychophysical calibration session, Sec. 6.5).
    std::cout << "fitting RBF network to the user's thresholds...\n";
    const RbfDiscriminationModel user_rbf(user_truth);
    std::cout << "  " << user_rbf.centerCount()
              << " Gaussian centers, relative RMS fit error "
              << fmtDouble(user_rbf.relativeRmsError(user_truth) * 100.0,
                           1)
              << "%\n\n";

    DisplayGeometry display;
    display.width = width;
    display.height = height;
    display.fixationX = width / 2.0;
    display.fixationY = height / 2.0;
    const EccentricityMap ecc(display);

    ObserverPopulationParams op;
    const SimulatedObserver user(user_scale, op);

    TextTable table("population vs per-user encoding for this user");
    table.setHeader({"scene", "model", "bits/px", "vs raw",
                     "user sees artifacts?"});

    // Midtone scenes: observer variation is what calibration fixes.
    // (The dark-region model error of Sec. 6.3 is a *model* limitation;
    // no per-user scale can repair it, as the paper also notes.)
    for (SceneId id : {SceneId::Thai, SceneId::Office}) {
        const ImageF frame =
            renderScene(id, {width, height, 0, 0.0, 0});
        for (int which = 0; which < 2; ++which) {
            const DiscriminationModel &model =
                which == 0
                    ? static_cast<const DiscriminationModel &>(
                          population)
                    : static_cast<const DiscriminationModel &>(
                          user_rbf);
            PipelineParams params;
            params.threads = 4;
            const PerceptualEncoder encoder(model, params);
            const EncodedFrame encoded =
                encoder.encodeFrame(frame, ecc);
            const bool notices = user.noticesArtifact(
                frame, encoded.adjustedLinear, ecc, population);
            table.addRow(
                {sceneName(id),
                 which == 0 ? "population" : "per-user RBF",
                 fmtDouble(encoded.bdStats.bitsPerPixel(), 2),
                 fmtDouble(encoded.bdStats.reductionVsRawPercent(), 1) +
                     "%",
                 notices ? "YES" : "no"});
        }
    }
    table.print(std::cout);

    std::cout << "\nPer-user calibration trades a little compression for "
                 "a guarantee tailored to this user's\nthresholds "
                 "(Sec. 6.5: such calibrations are routine in HMD "
                 "setup, like IPD adjustment).\n";
    return 0;
}
