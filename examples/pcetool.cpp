/**
 * @file
 * pcetool: a command-line front end for the library — compress real
 * images (binary PPM) with the perceptual encoder, decode streams, and
 * inspect them. The "downstream user" interface.
 *
 *   pcetool encode <in.ppm> <out.pce> [options]
 *       --tile N          BD tile size (default 4)
 *       --fov DEG         horizontal field of view (default 100)
 *       --fixation X,Y    gaze position in pixels (default center)
 *       --foveal DEG      foveal bypass radius (default 5)
 *       --scale S         discrimination-model scale (default 1.0)
 *       --bd-only         skip perceptual adjustment (plain BD)
 *   pcetool decode <in.pce> <out.ppm>
 *   pcetool info   <in.pce>
 *
 * The .pce container is exactly the BD bitstream of src/bd (decodable
 * by the stock decoder); the perceptual adjustment only changes what
 * gets encoded, mirroring the paper's plug-and-play design.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bd/bd_codec.hh"
#include "core/pipeline.hh"
#include "image/ppm.hh"
#include "metrics/report.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"

namespace {

using namespace pce;

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("cannot open " + path);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(f),
                                std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("cannot open " + path);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  pcetool encode <in.ppm> <out.pce> [--tile N] [--fov DEG]\n"
           "          [--fixation X,Y] [--foveal DEG] [--scale S]\n"
           "          [--bd-only]\n"
           "  pcetool decode <in.pce> <out.ppm>\n"
           "  pcetool info   <in.pce>\n";
    return 2;
}

int
cmdEncode(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string in_path = argv[2];
    const std::string out_path = argv[3];

    int tile = 4;
    double fov = 100.0;
    double foveal = 5.0;
    double scale = 1.0;
    double fix_x = -1.0;
    double fix_y = -1.0;
    bool bd_only = false;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                throw std::runtime_error("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--tile")
            tile = std::stoi(next());
        else if (arg == "--fov")
            fov = std::stod(next());
        else if (arg == "--foveal")
            foveal = std::stod(next());
        else if (arg == "--scale")
            scale = std::stod(next());
        else if (arg == "--fixation") {
            const std::string v = next();
            const auto comma = v.find(',');
            if (comma == std::string::npos)
                throw std::runtime_error("--fixation expects X,Y");
            fix_x = std::stod(v.substr(0, comma));
            fix_y = std::stod(v.substr(comma + 1));
        } else if (arg == "--bd-only")
            bd_only = true;
        else
            throw std::runtime_error("unknown option " + arg);
    }

    const ImageU8 input = readPpm(in_path);
    const std::size_t raw_bytes = input.byteSize();

    std::vector<uint8_t> stream;
    if (bd_only) {
        stream = BdCodec(tile).encode(input);
    } else {
        DisplayGeometry geom;
        geom.width = input.width();
        geom.height = input.height();
        geom.horizontalFovDeg = fov;
        geom.fixationX = fix_x >= 0 ? fix_x : input.width() / 2.0;
        geom.fixationY = fix_y >= 0 ? fix_y : input.height() / 2.0;
        const EccentricityMap ecc(geom);

        AnalyticModelParams mp;
        mp.globalScale = scale;
        const AnalyticDiscriminationModel model(mp);
        PipelineParams pp;
        pp.tileSize = tile;
        pp.fovealCutoffDeg = foveal;
        pp.threads = 4;
        const PerceptualEncoder encoder(model, pp);
        stream = encoder.encodeFrame(toLinear(input), ecc).bdStream;
    }

    writeFile(out_path, stream);
    std::cout << in_path << ": " << raw_bytes << " B -> " << out_path
              << ": " << stream.size() << " B ("
              << fmtDouble(
                     100.0 * (1.0 - static_cast<double>(stream.size()) /
                                        static_cast<double>(raw_bytes)),
                     1)
              << "% reduction, "
              << fmtDouble(bitsPerPixelFromBytes(stream.size(),
                                                 input.pixelCount()),
                           2)
              << " bits/pixel)\n";
    return 0;
}

int
cmdDecode(int argc, char **argv)
{
    if (argc != 4)
        return usage();
    const ImageU8 img = BdCodec::decode(readFile(argv[2]));
    writePpm(argv[3], img);
    std::cout << argv[2] << " -> " << argv[3] << " (" << img.width()
              << "x" << img.height() << ")\n";
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 3)
        return usage();
    const auto stream = readFile(argv[2]);
    const ImageU8 img = BdCodec::decode(stream);
    std::cout << argv[2] << ": BD stream, " << img.width() << "x"
              << img.height() << ", " << stream.size() << " B, "
              << fmtDouble(bitsPerPixelFromBytes(stream.size(),
                                                 img.pixelCount()),
                           2)
              << " bits/pixel ("
              << fmtDouble(reductionVsRawPercent(bitsPerPixelFromBytes(
                               stream.size(), img.pixelCount())),
                           1)
              << "% vs raw)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            return usage();
        const std::string cmd = argv[1];
        if (cmd == "encode")
            return cmdEncode(argc, argv);
        if (cmd == "decode")
            return cmdDecode(argc, argv);
        if (cmd == "info")
            return cmdInfo(argc, argv);
        return usage();
    } catch (const std::exception &e) {
        std::cerr << "pcetool: " << e.what() << "\n";
        return 1;
    }
}
