/**
 * @file
 * service_stereo: a stereo animation clip driven through the
 * multi-stream EncodeService (src/service) — the "my headset talks to
 * an encode service" view of the library.
 *
 *   $ ./example_service_stereo [scene] [frames]
 *
 * scene is one of: office fortnite skyline dumbo thai monkey.
 *
 * The clip's stereo pairs are submitted to one stream (left eye then
 * right eye per frame, the service's FIFO keeps them paired) while the
 * collector overlaps with the next submission — the double-buffered
 * pipeline the per-stream slot ring is designed for. At the end the
 * ServiceReport shows what a deployment would monitor: per-stream
 * throughput and queue-latency percentiles.
 */

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <stdexcept>
#include <string>

#include "service/encode_service.hh"

namespace {

pce::SceneId
sceneByName(const char *name)
{
    for (pce::SceneId id : pce::allScenes())
        if (std::strcmp(pce::sceneName(id), name) == 0)
            return id;
    throw std::runtime_error(std::string("unknown scene: ") + name);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pce;

    const SceneId scene =
        argc > 1 ? sceneByName(argv[1]) : SceneId::Office;
    const int frames = argc > 2 ? std::atoi(argv[2]) : 8;
    const int width = 256;
    const int height = 256;

    DisplayGeometry display;
    display.width = width;
    display.height = height;
    display.horizontalFovDeg = 100.0;
    display.fixationX = width / 2.0;
    display.fixationY = height / 2.0;
    const EccentricityMap ecc(display);

    const AnalyticDiscriminationModel model;
    ServiceParams params;
    params.threads = 4;
    params.streamDepth = 2;  // pipeline both eyes of a pair
    EncodeService service(model, params);
    StreamHandle stream =
        service.openStream(sceneName(scene), ecc);

    std::cout << "scene " << sceneName(scene) << ", " << frames
              << " stereo frames @ " << width << "x" << height
              << " per eye through the encode service\n\n"
              << "frame  eye    bits/px  reduction vs 24bpp\n";

    const auto clip =
        renderStereoSequence(scene, width, height, frames);
    for (int f = 0; f < frames; ++f) {
        // Both eyes in flight, collected in submission order.
        service.submitStereo(stream, clip[static_cast<std::size_t>(f)]);
        for (const char *eye : {"left", "right"}) {
            const FrameLease lease = service.collect(stream);
            std::cout << std::setw(5) << f << "  " << std::setw(5)
                      << eye << "  " << std::fixed
                      << std::setprecision(2) << std::setw(7)
                      << lease->bdStats.bitsPerPixel() << "  "
                      << std::setw(17)
                      << lease->bdStats.reductionVsRawPercent()
                      << "%\n";
        }
    }

    const ServiceReport report = service.report();
    std::cout << "\nservice report:\n";
    for (const StreamStats &st : report.streams) {
        std::cout << "  stream '" << st.name << "': "
                  << st.framesEncoded << " frames, " << std::fixed
                  << std::setprecision(2) << st.megapixels << " MP, "
                  << st.encodeMps << " MP/s encode, queue p50/p99 "
                  << st.queueLatencyP50Ms << "/"
                  << st.queueLatencyP99Ms << " ms\n";
    }
    std::cout << "  aggregate: " << report.megapixels << " MP in "
              << report.wallSeconds << " s wall ("
              << report.aggregateMps << " MP/s including render)\n";

    service.shutdown();
    return 0;
}
