/**
 * @file
 * Fig. 12 reproduction: distribution of adjusted tiles across the two
 * Fig. 6 cases (c1: no common plane; c2: common plane, delta collapses
 * to zero), per scene.
 *
 * Paper: c2 covers 78.92% of tiles on average.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"

using namespace pce;

int
main()
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const EccentricityMap ecc(bench::benchDisplay(w, h));

    PipelineParams params;
    params.threads = bench::benchThreads();
    const PerceptualEncoder encoder(bench::benchModel(), params);

    TextTable table("Fig. 12: tile case distribution (%), " +
                    std::to_string(w) + "x" + std::to_string(h));
    table.setHeader(
        {"scene", "c1 (HL>LH)", "c2 (HL<=LH)", "red axis", "blue axis"});

    double c2_sum = 0.0;
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
        PipelineStats stats;
        encoder.adjustFrame(frame, ecc, &stats);
        const double adjusted =
            static_cast<double>(stats.c1Tiles + stats.c2Tiles);
        const double c1 = 100.0 * stats.c1Tiles / adjusted;
        const double c2 = 100.0 * stats.c2Tiles / adjusted;
        const double red = 100.0 * stats.redAxisTiles / adjusted;
        const double blue = 100.0 * stats.blueAxisTiles / adjusted;
        c2_sum += c2;
        table.addRow({sceneName(id), fmtDouble(c1, 1), fmtDouble(c2, 1),
                      fmtDouble(red, 1), fmtDouble(blue, 1)});
    }
    table.print(std::cout);
    std::cout << "\nMean c2 share: " << fmtDouble(c2_sum / 6.0, 1)
              << "% (paper: 78.92%; c2 tiles store zero delta bits on "
                 "the optimized channel)\n";
    return 0;
}
