/**
 * @file
 * Fig. 11 reproduction: bits-per-pixel split into base, metadata, and
 * delta components, BD (left) versus our encoder (right), per scene.
 *
 * The paper's message: the entire saving comes from smaller deltas; base
 * and metadata costs are identical by construction.
 */

#include <iostream>

#include "bd/bd_codec.hh"
#include "bench_common.hh"
#include "metrics/report.hh"

using namespace pce;

int
main()
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const EccentricityMap ecc(bench::benchDisplay(w, h));

    PipelineParams params;
    params.threads = bench::benchThreads();
    const PerceptualEncoder encoder(bench::benchModel(), params);
    const BdCodec bd(4);

    TextTable table("Fig. 11: bits/pixel split (BD | Ours), " +
                    std::to_string(w) + "x" + std::to_string(h));
    table.setHeader({"scene", "BD base", "BD meta", "BD delta",
                     "BD total", "Our base", "Our meta", "Our delta",
                     "Our total"});

    double delta_saving_sum = 0.0;
    for (SceneId id : allScenes()) {
        const ImageF frame =
            renderScene(id, {w, h, 0, 0.0, 0});
        const ImageU8 srgb = toSrgb8(frame);
        const BdFrameStats base = bd.analyze(srgb);
        const BdFrameStats ours =
            encoder.encodeFrame(frame, ecc).bdStats;

        const double px = static_cast<double>(base.pixels);
        table.addRow({sceneName(id),
                      fmtDouble(base.baseBits / px, 2),
                      fmtDouble(base.metaBits / px, 2),
                      fmtDouble(base.deltaBits / px, 2),
                      fmtDouble(base.bitsPerPixel(), 2),
                      fmtDouble(ours.baseBits / px, 2),
                      fmtDouble(ours.metaBits / px, 2),
                      fmtDouble(ours.deltaBits / px, 2),
                      fmtDouble(ours.bitsPerPixel(), 2)});
        delta_saving_sum +=
            1.0 - static_cast<double>(ours.deltaBits) /
                      static_cast<double>(base.deltaBits);
    }
    table.print(std::cout);
    std::cout << "\nBase and metadata are identical by construction; the "
                 "space reduction comes from the deltas\n(paper Fig. 11): "
                 "mean delta-bit saving "
              << fmtDouble(100.0 * delta_saving_sum / 6.0, 1) << "%\n";
    return 0;
}
