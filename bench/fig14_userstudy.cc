/**
 * @file
 * Fig. 14 reproduction (simulated): number of participants, out of 11,
 * who did not notice any artifact per scene, using the simulated
 * observer population (see src/perception/observer.hh and DESIGN.md for
 * the substitution), plus the Sec. 6.3 objective-quality PSNR analysis.
 *
 * Paper shape: fortnite is clean for everyone (green shifts hide in
 * green content); the dark scenes dumbo and monkey show the most
 * artifacts; on average 2.8 of 11 participants notice something.
 * PSNR averages 46 dB with most scenes below 37 dB — subjectively
 * clean despite being numerically lossy.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"
#include "perception/observer.hh"

using namespace pce;

int
main()
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const EccentricityMap ecc(bench::benchDisplay(w, h));

    PipelineParams params;
    params.threads = bench::benchThreads();
    const PerceptualEncoder encoder(bench::benchModel(), params);

    ObserverPopulationParams pop_params;
    const auto population = drawObserverPopulation(pop_params);

    TextTable table("Fig. 14: simulated user study (11 participants), " +
                    std::to_string(w) + "x" + std::to_string(h));
    table.setHeader({"scene", "no-artifact count", "PSNR (dB)",
                     "mean supra-threshold frac"});

    double notice_sum = 0.0;
    double psnr_sum = 0.0;
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
        const auto encoded = encoder.encodeFrame(frame, ecc);
        const auto result = runUserStudy(
            population, frame, encoded.adjustedLinear, ecc,
            bench::benchModel());
        const double quality =
            psnr(toSrgb8(frame), encoded.adjustedSrgb);
        notice_sum += result.participants - result.noArtifactCount;
        psnr_sum += quality;
        table.addRow({sceneName(id),
                      std::to_string(result.noArtifactCount) + "/11",
                      fmtDouble(quality, 1),
                      fmtDouble(result.meanSupraFraction, 5)});
    }
    table.print(std::cout);

    std::cout << "\nMean participants noticing artifacts: "
              << fmtDouble(notice_sum / 6.0, 1)
              << " of 11 (paper: 2.8, sd 1.5)\n";
    std::cout << "Mean PSNR: " << fmtDouble(psnr_sum / 6.0, 1)
              << " dB (paper: 46.0 dB mean, most scenes < 37 dB -- low "
                 "PSNR with clean subjective quality is the point)\n";
    return 0;
}
