/**
 * @file
 * google-benchmark microbenches of the encoder stages, mirroring the
 * CAU pipeline decomposition (Fig. 8): ellipsoid evaluation (the GPU's
 * job), extrema computation (Compute Extrema Block), per-tile
 * adjustment (full PE), frame-level encoding, and the BD codec.
 *
 * These quantify the paper's motivation: the algorithm in software runs
 * far below display rate (2 FPS on a mobile GPU), which is why the CAU
 * exists.
 */

#include <benchmark/benchmark.h>

#include "bd/bd_codec.hh"
#include "bench_common.hh"
#include "common/rng.hh"
#include "core/adjust.hh"
#include "core/quadric.hh"
#include "perception/rbf.hh"

namespace {

using namespace pce;

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

std::vector<Vec3>
randomTile(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Vec3> tile;
    for (std::size_t i = 0; i < n; ++i)
        tile.emplace_back(rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                          rng.uniform(0.1, 0.9));
    return tile;
}

void
BM_EllipsoidModelAnalytic(benchmark::State &state)
{
    const Vec3 rgb(0.4, 0.5, 0.6);
    double ecc = 5.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model().semiAxes(rgb, ecc));
        ecc = ecc < 40.0 ? ecc + 0.1 : 5.0;
    }
}
BENCHMARK(BM_EllipsoidModelAnalytic);

void
BM_EllipsoidModelRbf(benchmark::State &state)
{
    static const RbfDiscriminationModel rbf(model());
    const Vec3 rgb(0.4, 0.5, 0.6);
    double ecc = 5.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rbf.semiAxes(rgb, ecc));
        ecc = ecc < 40.0 ? ecc + 0.1 : 5.0;
    }
}
BENCHMARK(BM_EllipsoidModelRbf);

void
BM_QuadricTransform(benchmark::State &state)
{
    const Ellipsoid e = model().ellipsoidFor(Vec3(0.4, 0.5, 0.6), 20.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(Quadric::fromDklEllipsoid(e));
}
BENCHMARK(BM_QuadricTransform);

void
BM_ExtremaPaperDatapath(benchmark::State &state)
{
    const Ellipsoid e = model().ellipsoidFor(Vec3(0.4, 0.5, 0.6), 20.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(extremaAlongAxis(e, 2));
}
BENCHMARK(BM_ExtremaPaperDatapath);

void
BM_ExtremaLagrange(benchmark::State &state)
{
    const Ellipsoid e = model().ellipsoidFor(Vec3(0.4, 0.5, 0.6), 20.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(extremaAlongAxisLagrange(e, 2));
}
BENCHMARK(BM_ExtremaLagrange);

void
BM_TileAdjust(benchmark::State &state)
{
    const TileAdjuster adjuster(model());
    const auto tile = randomTile(state.range(0) * state.range(0), 1);
    const std::vector<double> ecc(tile.size(), 20.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(adjuster.adjustTile(tile, ecc));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(tile.size()));
}
BENCHMARK(BM_TileAdjust)->Arg(4)->Arg(8)->Arg(16);

void
BM_TileAdjustScratch(benchmark::State &state)
{
    // The zero-allocation production path: scratch reused across tiles.
    const TileAdjuster adjuster(model());
    const auto tile = randomTile(state.range(0) * state.range(0), 1);
    const std::vector<double> ecc(tile.size(), 20.0);
    TileScratch scratch;
    for (auto _ : state) {
        scratch.pixels = tile;
        scratch.ecc = ecc;
        benchmark::DoNotOptimize(adjuster.adjustTile(scratch));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(tile.size()));
}
BENCHMARK(BM_TileAdjustScratch)->Arg(4)->Arg(8)->Arg(16);

void
BM_FrameAdjust(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc(pce::bench::benchDisplay(n, n));
    PipelineParams params;
    params.threads = static_cast<int>(state.range(1));
    const PerceptualEncoder encoder(model(), params);
    for (auto _ : state)
        benchmark::DoNotOptimize(encoder.adjustFrame(frame, ecc));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(frame.pixelCount()));
}
BENCHMARK(BM_FrameAdjust)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({512, 4});

void
BM_FrameEncode(benchmark::State &state)
{
    // Full-frame throughput (adjust + sRGB + BD encode), the number
    // that tracks the perf trajectory in BENCH_encoder.json; the
    // items/s counter reads directly in pixels/s.
    const int n = static_cast<int>(state.range(0));
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc(pce::bench::benchDisplay(n, n));
    PipelineParams params;
    params.threads = static_cast<int>(state.range(1));
    const PerceptualEncoder encoder(model(), params);
    for (auto _ : state)
        benchmark::DoNotOptimize(encoder.encodeFrame(frame, ecc));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(frame.pixelCount()));
}
BENCHMARK(BM_FrameEncode)
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({512, 4});

void
BM_BdEncode(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const ImageU8 img =
        toSrgb8(renderScene(SceneId::Thai, {n, n, 0, 0.0, 0}));
    const BdCodec codec(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.encode(img));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(img.byteSize()));
}
BENCHMARK(BM_BdEncode)->Arg(256)->Arg(512);

void
BM_BdDecode(benchmark::State &state)
{
    // Steady-state hardened decode: caller-owned image + scratch
    // reused across iterations (the allocating BdCodec::decode wrapper
    // adds one ImageU8 build per call on top of this).
    const int n = static_cast<int>(state.range(0));
    const BdCodec codec(4);
    const auto stream = codec.encode(
        toSrgb8(renderScene(SceneId::Thai, {n, n, 0, 0.0, 0})));
    ImageU8 out;
    BdDecodeScratch scratch;
    for (auto _ : state) {
        BdCodec::decodeInto(stream, out, &scratch);
        benchmark::DoNotOptimize(out.data().data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_BdDecode)->Arg(256)->Arg(512);

} // namespace

BENCHMARK_MAIN();
