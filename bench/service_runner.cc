/**
 * @file
 * Multi-stream service throughput runner: replays N concurrent frame
 * streams through one EncodeService and *appends* a dated
 * `"bench": "encode_service"` record to BENCH_encoder.json (schema in
 * docs/PERF.md), next to encoder_runner's single-frame records.
 *
 * Each stream is a producer thread pipelining submit/collect over its
 * scene's animation frames, so the measurement includes everything a
 * deployment pays: the input copy, queue transit, per-stream slot
 * recycling, and the dispatcher fanning every frame across the shared
 * pool. A single-shot pass over the identical frames (one
 * encodeFrameInto loop, same thread count) runs first; the ratio of
 * the two throughputs is the service overhead, recorded as
 * `service_efficiency`.
 *
 * The run sweeps dispatcher shard counts (PCE_BENCH_SHARDS, a comma
 * list, default "1,2,4") and appends one record per shard count with
 * the shard fields (shard_count, stolen_frames, queue_peak_depth,
 * shard_occupancy_mean), so the trajectory shows whether the
 * many-small-streams workload stops serializing behind one
 * dispatcher. On a single-hardware-thread host the sweep measures
 * protocol overhead, not core scaling — hw_threads is recorded so a
 * reader can tell which one a record shows.
 *
 * Knobs (environment): PCE_BENCH_WIDTH / PCE_BENCH_HEIGHT /
 * PCE_BENCH_THREADS (shared with encoder_runner), PCE_BENCH_STREAMS
 * (concurrent streams, default 4), PCE_BENCH_FRAMES (frames per
 * stream, default 12), PCE_BENCH_REPEATS (replay rounds, best-of,
 * default 3), PCE_BENCH_SHARDS (shard-count sweep list). Output
 * path: argv[1] or PCE_BENCH_OUT, default BENCH_encoder.json.
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "obs/trace.hh"
#include "service/encode_service.hh"
#include "simd/tile_kernels.hh"

#ifdef PCE_HAVE_GIT_REV_HEADER
#include "pce_git_rev.h"  // build-time stamp (cmake/git_rev.cmake)
#endif
#ifndef PCE_GIT_REV
#define PCE_GIT_REV "unknown"
#endif

namespace {

using namespace pce;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct ReplayResult
{
    double wallSeconds = 0.0;
    double megapixels = 0.0;
    /** Mean per-stream p50 / worst-stream p99 and max, ms. */
    double queueP50Ms = 0.0;
    double queueP99Ms = 0.0;
    double queueMaxMs = 0.0;
    /** Shard telemetry (ServiceReport): cross-shard steals, exact
     *  aggregate backlog peak, mean dispatcher occupancy. */
    std::uint64_t stolenFrames = 0;
    std::size_t queuePeakDepth = 0;
    double occupancyMean = 0.0;
};

/**
 * One replay round: a fresh service, one producer thread per stream,
 * each pipelining its frame list (at most one un-collected frame
 * beyond the in-flight submit, the depth-2 double-buffer pattern).
 */
ReplayResult
replay(const std::vector<std::vector<const ImageF *>> &stream_frames,
       const EccentricityMap &ecc, int threads, std::size_t shards)
{
    ServiceParams sp;
    sp.threads = threads;
    sp.shards = shards;
    EncodeService svc(bench::benchModel(), sp);
    const std::size_t n_streams = stream_frames.size();
    std::vector<StreamHandle> handles;
    handles.reserve(n_streams);
    for (std::size_t s = 0; s < n_streams; ++s)
        handles.push_back(
            svc.openStream("stream-" + std::to_string(s), ecc));

    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> producers;
    producers.reserve(n_streams);
    for (std::size_t s = 0; s < n_streams; ++s) {
        producers.emplace_back([&, s] {
            const auto &frames = stream_frames[s];
            std::size_t collected = 0;
            for (std::size_t i = 0; i < frames.size(); ++i) {
                svc.submit(handles[s], *frames[i]);
                if (i - collected >= 1) {
                    const FrameLease lease = svc.collect(handles[s]);
                    if (lease->bdStream.empty())
                        std::abort();  // keep the work observable
                    ++collected;
                }
            }
            while (collected < frames.size()) {
                const FrameLease lease = svc.collect(handles[s]);
                if (lease->bdStream.empty())
                    std::abort();
                ++collected;
            }
        });
    }
    for (auto &t : producers)
        t.join();
    const Clock::time_point t1 = Clock::now();

    const ServiceReport rep = svc.report();
    ReplayResult r;
    r.wallSeconds = seconds(t0, t1);
    r.megapixels = rep.megapixels;
    for (const StreamStats &st : rep.streams) {
        r.queueP50Ms += st.queueLatencyP50Ms /
                        static_cast<double>(rep.streams.size());
        r.queueP99Ms = std::max(r.queueP99Ms, st.queueLatencyP99Ms);
        r.queueMaxMs = std::max(r.queueMaxMs, st.queueLatencyMaxMs);
    }
    r.stolenFrames = rep.stolenFrames;
    r.queuePeakDepth = rep.queuePeakDepth;
    for (const ShardStats &sh : rep.shards)
        r.occupancyMean +=
            sh.occupancy / static_cast<double>(rep.shards.size());
    return r;
}

/** Parse a comma-separated shard-count sweep list (e.g. "1,2,4"). */
std::vector<std::size_t>
parseShardSweep(const char *env)
{
    std::vector<std::size_t> out;
    std::stringstream ss(env != nullptr ? env : "1,2,4");
    std::string tok;
    while (std::getline(ss, tok, ','))
        if (const long v = std::strtol(tok.c_str(), nullptr, 10);
            v >= 1)
            out.push_back(static_cast<std::size_t>(v));
    if (out.empty())
        out.push_back(1);
    return out;
}

/** The same frames through plain encodeFrameInto, one reused output. */
double
singleShotMps(
    const std::vector<std::vector<const ImageF *>> &stream_frames,
    const EccentricityMap &ecc, int threads)
{
    PipelineParams p;
    p.threads = threads;
    const PerceptualEncoder encoder(bench::benchModel(), p);
    EncodedFrame out;
    double megapixels = 0.0;
    // Warm-up on the first frame (pool spin-up, buffer growth).
    encoder.encodeFrameInto(*stream_frames[0][0], ecc, out);
    const Clock::time_point t0 = Clock::now();
    for (const auto &frames : stream_frames) {
        for (const ImageF *f : frames) {
            encoder.encodeFrameInto(*f, ecc, out);
            if (out.bdStream.empty())
                std::abort();
            megapixels +=
                static_cast<double>(f->pixelCount()) / 1e6;
        }
    }
    return megapixels / seconds(t0, Clock::now());
}

} // namespace

int
main(int argc, char **argv)
{
    // PCE_BENCH_WORKLOAD=small32 is the many-small-streams shorthand:
    // 32 concurrent 128x128 streams, the workload that exposed the
    // single-dispatcher serialization (explicit PCE_BENCH_* knobs
    // still override it).
    const char *workload = std::getenv("PCE_BENCH_WORKLOAD");
    const bool small32 =
        workload != nullptr && std::string(workload) == "small32";
    const int w = small32 ? static_cast<int>(envInt("PCE_BENCH_WIDTH",
                                                    128))
                          : bench::benchWidth();
    const int h = small32
                      ? static_cast<int>(envInt("PCE_BENCH_HEIGHT",
                                                128))
                      : bench::benchHeight();
    const int threads = bench::benchThreads();
    const int n_streams = static_cast<int>(
        envInt("PCE_BENCH_STREAMS", small32 ? 32 : 4));
    const int frames_per_stream = static_cast<int>(
        envInt("PCE_BENCH_FRAMES", small32 ? 4 : 12));
    const int repeats =
        static_cast<int>(envInt("PCE_BENCH_REPEATS", 3));
    if (n_streams < 1 || frames_per_stream < 1 || repeats < 1) {
        std::cerr << "service_runner: PCE_BENCH_STREAMS, "
                     "PCE_BENCH_FRAMES, and PCE_BENCH_REPEATS must "
                     "all be >= 1\n";
        return 1;
    }
    std::string out_path = "BENCH_encoder.json";
    if (argc > 1)
        out_path = argv[1];
    else if (const char *env = std::getenv("PCE_BENCH_OUT"))
        out_path = env;

    const EccentricityMap ecc(bench::benchDisplay(w, h));

    // Two distinct animation phases per stream, cycled: enough content
    // variety to defeat trivial caching while keeping prerender memory
    // at 2 frames x streams, independent of frames_per_stream.
    const std::vector<SceneId> &scenes = allScenes();
    std::vector<std::vector<ImageF>> distinct(
        static_cast<std::size_t>(n_streams));
    for (int s = 0; s < n_streams; ++s) {
        const SceneId id = scenes[static_cast<std::size_t>(s) %
                                  scenes.size()];
        distinct[s].push_back(
            renderScene(id, {w, h, s % 2, 0.37 * s, 0}));
        distinct[s].push_back(
            renderScene(id, {w, h, s % 2, 0.37 * s + 0.5, 0}));
    }
    std::vector<std::vector<const ImageF *>> stream_frames(
        static_cast<std::size_t>(n_streams));
    for (int s = 0; s < n_streams; ++s)
        for (int i = 0; i < frames_per_stream; ++i)
            stream_frames[s].push_back(
                &distinct[s][static_cast<std::size_t>(i) % 2]);

    const double singleshot_mps =
        singleShotMps(stream_frames, ecc, threads);

    const std::vector<std::size_t> sweep =
        parseShardSweep(std::getenv("PCE_BENCH_SHARDS"));

    // Trace overhead: one replay round with tracing off and one with
    // it on, back to back at the sweep's first shard count. The off
    // number is what the shipping default pays (a relaxed load per
    // span site); the on number adds clock reads and ring stores on
    // the dispatcher and every pool worker.
    obs::setTraceEnabled(false);
    const ReplayResult trace_off =
        replay(stream_frames, ecc, threads, sweep.front());
    obs::Tracer::instance().reset();
    obs::setTraceEnabled(true);
    const ReplayResult trace_on =
        replay(stream_frames, ecc, threads, sweep.front());
    obs::setTraceEnabled(false);
    const std::uint64_t trace_events =
        obs::Tracer::instance().recordedEvents();
    obs::Tracer::instance().reset();
    const double trace_off_mps =
        trace_off.wallSeconds > 0.0
            ? trace_off.megapixels / trace_off.wallSeconds
            : 0.0;
    const double trace_on_mps =
        trace_on.wallSeconds > 0.0
            ? trace_on.megapixels / trace_on.wallSeconds
            : 0.0;
    const double trace_ratio =
        trace_off_mps > 0.0 ? trace_on_mps / trace_off_mps : 0.0;

    std::cout << "simd level: "
              << simd::simdLevelName(simd::activeSimdLevel())
              << " (git " << PCE_GIT_REV << ")\n"
              << n_streams << " streams x " << frames_per_stream
              << " frames at " << w << "x" << h << ", " << threads
              << " threads\n"
              << "single-shot: " << singleshot_mps << " MP/s\n"
              << "trace off/on (shards " << sweep.front()
              << "): " << trace_off_mps << " / " << trace_on_mps
              << " MP/s (ratio " << trace_ratio << ", "
              << trace_events << " events)\n";

    for (const std::size_t shards : sweep) {
        ReplayResult best;
        for (int r = 0; r < repeats; ++r) {
            const ReplayResult round =
                replay(stream_frames, ecc, threads, shards);
            if (best.wallSeconds == 0.0 ||
                round.wallSeconds < best.wallSeconds)
                best = round;
        }
        const double aggregate_mps =
            best.megapixels / best.wallSeconds;
        const double efficiency =
            singleshot_mps > 0.0 ? aggregate_mps / singleshot_mps
                                 : 0.0;

        std::ostringstream rec;
        rec << "  {\n"
            << "    \"bench\": \"encode_service\",\n"
            << "    \"date\": \"" << bench::isoNowUtc() << "\",\n"
            << "    \"git_rev\": \"" << PCE_GIT_REV << "\",\n"
            << "    \"simd_level\": \""
            << simd::simdLevelName(simd::activeSimdLevel()) << "\",\n"
            << "    \"width\": " << w << ",\n"
            << "    \"height\": " << h << ",\n"
            << "    \"streams\": " << n_streams << ",\n"
            << "    \"frames_per_stream\": " << frames_per_stream
            << ",\n"
            << "    \"repeats\": " << repeats << ",\n"
            << "    \"hw_threads\": "
            << std::thread::hardware_concurrency() << ",\n"
            << "    \"mt_threads\": " << threads << ",\n"
            << "    \"mt_pool_workers\": " << (threads - 1) << ",\n"
            << "    \"shard_count\": " << shards << ",\n"
            << "    \"stolen_frames\": " << best.stolenFrames << ",\n"
            << "    \"queue_peak_depth\": " << best.queuePeakDepth
            << ",\n"
            << "    \"shard_occupancy_mean\": " << best.occupancyMean
            << ",\n"
            << "    \"aggregate_mps\": " << aggregate_mps << ",\n"
            << "    \"singleshot_mps\": " << singleshot_mps << ",\n"
            << "    \"service_efficiency\": " << efficiency << ",\n"
            << "    \"queue_p50_ms\": " << best.queueP50Ms << ",\n"
            << "    \"queue_p99_ms\": " << best.queueP99Ms << ",\n"
            << "    \"queue_max_ms\": " << best.queueMaxMs << ",\n"
            << "    \"trace_off_aggregate_mps\": " << trace_off_mps
            << ",\n"
            << "    \"trace_on_aggregate_mps\": " << trace_on_mps
            << ",\n"
            << "    \"trace_on_vs_off\": " << trace_ratio << ",\n"
            << "    \"trace_events\": " << trace_events
            << "\n  }";
        bench::appendJsonRecord(out_path, rec.str());

        std::cout << "shards " << shards << ": " << aggregate_mps
                  << " MP/s (" << efficiency * 100.0
                  << "% of single-shot), stolen " << best.stolenFrames
                  << ", queue peak " << best.queuePeakDepth
                  << ", occupancy " << best.occupancyMean << "\n"
                  << "  queue latency: p50 " << best.queueP50Ms
                  << " ms, p99 " << best.queueP99Ms << " ms, max "
                  << best.queueMaxMs << " ms\n";
    }
    std::cout << "appended " << sweep.size() << " record(s) to "
              << out_path << "\n";
    return 0;
}
