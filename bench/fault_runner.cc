/**
 * @file
 * Fault-injection campaign runner: sweeps seeded single- and
 * multi-bit flips over every named surface of the encode pipeline
 * (src/fault/campaign.hh), baseline defenses versus the selective
 * integrity hardening, and appends a dated `"bench": "fault_campaign"`
 * record to BENCH_encoder.json (schema in docs/PERF.md) with
 * per-surface detection coverage and silent-corruption rates for both
 * configurations — the measured before/after of docs/FAULTS.md.
 *
 * Also measures what the hardening costs: a frame-encode loop with
 * and without the per-frame integrity work (input hash at submit,
 * seal at encode, seal verify at collect), reported as MP/s.
 *
 * Knobs (environment): PCE_BENCH_FAULT_WIDTH / PCE_BENCH_FAULT_HEIGHT
 * (campaign frame, default 128x128 — small on purpose: thousands of
 * trials each encode or decode a frame), PCE_BENCH_FAULT_TRIALS
 * (trials per surface/flip-count/configuration, default 400),
 * PCE_BENCH_THREADS, PCE_BENCH_REPEATS (best-of rounds for the
 * overhead measurement, default 3). Output path: argv[1] or
 * PCE_BENCH_OUT, default BENCH_encoder.json.
 */

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/integrity.hh"
#include "fault/campaign.hh"
#include "simd/tile_kernels.hh"

#ifdef PCE_HAVE_GIT_REV_HEADER
#include "pce_git_rev.h"  // build-time stamp (cmake/git_rev.cmake)
#endif
#ifndef PCE_GIT_REV
#define PCE_GIT_REV "unknown"
#endif

namespace {

using namespace pce;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct OverheadResult
{
    double baselineMps = 0.0;  ///< encode only
    double hardenedMps = 0.0;  ///< encode + hash + seal + verify
};

/**
 * The per-frame cost of the integrity work, isolated: the same encode
 * loop, with and without hash64 over the input, sealFrame after the
 * encode, and verifyFrameSeal before "delivery" — the exact checks
 * the hardened service runs per frame.
 */
OverheadResult
overheadBench(int w, int h, int threads, int frames, int repeats)
{
    const DisplayGeometry geom = bench::benchDisplay(w, h);
    const EccentricityMap ecc(geom);
    PipelineParams pp;
    pp.threads = threads;
    const PerceptualEncoder enc(bench::benchModel(), pp);
    const ImageF frame = renderScene(SceneId::Office, {w, h, 0, 0, 0});
    const double mp = static_cast<double>(frame.pixelCount()) / 1e6 *
                      frames;

    OverheadResult best;
    EncodedFrame out;
    enc.encodeFrameInto(frame, ecc, out);  // warm buffers
    for (int r = 0; r < repeats; ++r) {
        const Clock::time_point t0 = Clock::now();
        for (int i = 0; i < frames; ++i) {
            enc.encodeFrameInto(frame, ecc, out);
            if (out.bdStream.empty())
                std::abort();
        }
        const double base_s = seconds(t0, Clock::now());

        const Clock::time_point t1 = Clock::now();
        for (int i = 0; i < frames; ++i) {
            const std::uint64_t in_hash =
                hash64(frame.pixels().data(),
                       frame.pixels().size() * sizeof(Vec3));
            enc.encodeFrameInto(frame, ecc, out);
            sealFrame(out);
            if (in_hash == 0 || !verifyFrameSeal(out))
                std::abort();
        }
        const double hard_s = seconds(t1, Clock::now());

        best.baselineMps = std::max(best.baselineMps, mp / base_s);
        best.hardenedMps = std::max(best.hardenedMps, mp / hard_s);
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const int w =
        static_cast<int>(envInt("PCE_BENCH_FAULT_WIDTH", 128));
    const int h =
        static_cast<int>(envInt("PCE_BENCH_FAULT_HEIGHT", 128));
    const int threads = bench::benchThreads();
    const int trials =
        static_cast<int>(envInt("PCE_BENCH_FAULT_TRIALS", 400));
    const int repeats =
        static_cast<int>(envInt("PCE_BENCH_REPEATS", 3));
    if (w < 8 || h < 8 || trials < 1 || repeats < 1) {
        std::cerr << "fault_runner: frame must be >= 8x8, "
                     "PCE_BENCH_FAULT_TRIALS and PCE_BENCH_REPEATS "
                     ">= 1\n";
        return 1;
    }
    std::string out_path = "BENCH_encoder.json";
    if (argc > 1)
        out_path = argv[1];
    else if (const char *env = std::getenv("PCE_BENCH_OUT"))
        out_path = env;

    FaultCampaignConfig cfg;
    cfg.width = w;
    cfg.height = h;
    cfg.threads = threads;
    cfg.trialsPerSurface = trials;
    cfg.flipCounts = {1, 3};

    std::cout << "fault campaign: " << w << "x" << h << " frame, "
              << trials << " trials x {1,3} flips x "
              << kFaultSurfaceCount
              << " surfaces x {baseline, hardened}...\n";
    const Clock::time_point t0 = Clock::now();
    const FaultCampaignReport report = runFaultCampaign(cfg);
    const double campaign_s = seconds(t0, Clock::now());

    const OverheadResult overhead =
        overheadBench(w, h, threads, 48, repeats);

    const FaultSurface surfaces[] = {
        FaultSurface::TileScratch, FaultSurface::BdStream,
        FaultSurface::PngPayload,  FaultSurface::QueueSlot,
        FaultSurface::EccMap,      FaultSurface::FrameOutput,
        FaultSurface::NetPacket,
    };
    int max_flips = 0;
    for (const int f : cfg.flipCounts)
        max_flips = std::max(max_flips, f);
    const int total_flips =
        static_cast<int>(report.outcomes.size()) * trials;

    std::ostringstream rec;
    rec << "  {\n"
        << "    \"bench\": \"fault_campaign\",\n"
        << "    \"date\": \"" << bench::isoNowUtc() << "\",\n"
        << "    \"git_rev\": \"" << PCE_GIT_REV << "\",\n"
        << "    \"simd_level\": \""
        << simd::simdLevelName(simd::activeSimdLevel()) << "\",\n"
        << "    \"width\": " << w << ",\n"
        << "    \"height\": " << h << ",\n"
        << "    \"repeats\": " << trials << ",\n"
        << "    \"hw_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "    \"mt_threads\": " << threads << ",\n"
        << "    \"mt_pool_workers\": " << (threads - 1) << ",\n"
        << "    \"total_trials\": " << total_flips << ",\n"
        << "    \"max_flips\": " << max_flips << ",\n"
        << "    \"campaign_seconds\": " << campaign_s << ",\n"
        << "    \"baseline_encode_mps\": " << overhead.baselineMps
        << ",\n"
        << "    \"hardened_encode_mps\": " << overhead.hardenedMps;
    for (const FaultSurface s : surfaces) {
        const SurfaceOutcome base = report.aggregate(s, false);
        const SurfaceOutcome hard = report.aggregate(s, true);
        rec << ",\n    \"" << faultSurfaceName(s)
            << "_baseline_coverage\": " << base.coverage()
            << ",\n    \"" << faultSurfaceName(s)
            << "_hardened_coverage\": " << hard.coverage()
            << ",\n    \"" << faultSurfaceName(s)
            << "_baseline_silent_rate\": " << base.silentRate()
            << ",\n    \"" << faultSurfaceName(s)
            << "_hardened_silent_rate\": " << hard.silentRate();
    }
    rec << "\n  }";
    bench::appendJsonRecord(out_path, rec.str());

    std::cout << "simd level: "
              << simd::simdLevelName(simd::activeSimdLevel())
              << " (git " << PCE_GIT_REV << ")\n"
              << "campaign finished in " << campaign_s << " s ("
              << total_flips << " trials)\n"
              << "surface                baseline cov / silent   "
                 "hardened cov / silent\n";
    for (const FaultSurface s : surfaces) {
        const SurfaceOutcome base = report.aggregate(s, false);
        const SurfaceOutcome hard = report.aggregate(s, true);
        std::printf("%-22s %8.3f / %-8.3f %10.3f / %-8.3f\n",
                    faultSurfaceName(s), base.coverage(),
                    base.silentRate(), hard.coverage(),
                    hard.silentRate());
    }
    std::cout << "integrity overhead: " << overhead.baselineMps
              << " MP/s baseline vs " << overhead.hardenedMps
              << " MP/s hardened\n"
              << "appended record to " << out_path << "\n";
    return 0;
}
