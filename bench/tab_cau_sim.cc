/**
 * @file
 * Sec. 4.2 reproduction (dynamic): the CAU pipeline simulator validating
 * the paper's sizing claims — 96 PEs with double-buffered pending
 * buffers neither stall the GPU nor starve the CAU at peak GPU output,
 * and the balanced design point matches the analytical delay model.
 */

#include <iostream>

#include "hw/cau_model.hh"
#include "hw/cau_sim.hh"
#include "metrics/report.hh"

using namespace pce;

int
main()
{
    const uint64_t frame_pixels = 5408ull * 2736ull;

    TextTable pe_sweep("CAU sim: PE count sweep (peak GPU traffic, "
                       "frame 5408x2736)");
    pe_sweep.setHeader({"PEs", "cycles", "GPU stall %", "PE util %",
                        "max buffer occ"});
    for (int pes : {24, 48, 96, 144, 192}) {
        CauSimConfig config;
        config.peCount = pes;
        const auto r = CauPipelineSim(config).simulateFrame(frame_pixels);
        pe_sweep.addRow({std::to_string(pes), std::to_string(r.cycles),
                         fmtDouble(100.0 * r.gpuStallFraction(), 1),
                         fmtDouble(100.0 * r.peUtilization(), 1),
                         std::to_string(r.maxBufferOccupancy)});
    }
    pe_sweep.print(std::cout);
    std::cout << "\n96 PEs is the knee: fewer stalls the GPU, more "
                 "starve (Sec. 6.1 design point).\n\n";

    TextTable buf_sweep("CAU sim: buffer depth under bursty GPU traffic "
                        "(125% of CAU rate during bursts)");
    buf_sweep.setHeader({"buffer (tiles/PE)", "GPU stall %",
                         "PE util %", "cycles"});
    for (int depth : {1, 2, 3, 4, 8}) {
        CauSimConfig config;
        config.traffic = GpuTraffic::Bursty;
        config.dutyCycle = 0.4;
        config.burstCycles = 8;
        config.gpuPixelsPerCycle = 768.0;  // peak 1920 px = 120 tiles
        config.bufferTilesPerPe = depth;
        const auto r = CauPipelineSim(config).simulateFrame(
            frame_pixels / 4);
        buf_sweep.addRow({std::to_string(depth),
                          fmtDouble(100.0 * r.gpuStallFraction(), 2),
                          fmtDouble(100.0 * r.peUtilization(), 1),
                          std::to_string(r.cycles)});
    }
    buf_sweep.print(std::cout);
    std::cout << "\nDouble buffering (the paper's choice) absorbs "
                 "moderate burstiness; deeper buffers chase\n"
                 "diminishing returns at 18 KB of SRAM per extra tile "
                 "of depth.\n\n";

    // Cross-check against the analytical model.
    const CauModel analytic;
    CauSimConfig sustained;
    sustained.gpuPixelsPerCycle = 512.0;  // analytic sustained rate
    const auto r = CauPipelineSim(sustained).simulateFrame(frame_pixels);
    std::cout << "Analytical delay: "
              << fmtDouble(analytic.compressionDelayUs(5408, 2736), 1)
              << " us; simulated at the sustained rate: "
              << fmtDouble(r.cycles * 6.0 / 1000.0, 1) << " us\n";
    return 0;
}
