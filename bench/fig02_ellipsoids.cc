/**
 * @file
 * Fig. 2 reproduction: discrimination ellipsoids at 5 and 25 degrees of
 * eccentricity for 27 colors uniformly sampled in the linear RGB cube
 * between [0.2, 0.2, 0.2] and [0.8, 0.8, 0.8].
 *
 * The paper plots the ellipsoids; we print, per color and eccentricity,
 * the DKL semi-axes and the linear-RGB half-extents, plus the aggregate
 * growth factor from 5 to 25 degrees (the figure's visual message).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "color/dkl.hh"
#include "core/quadric.hh"
#include "metrics/report.hh"

using namespace pce;

int
main()
{
    const auto &model = bench::benchModel();
    const Mat3 &inv = dkl2rgbMatrix();

    TextTable table("Fig. 2: discrimination ellipsoids, 27 colors");
    table.setHeader({"color (lin RGB)", "ecc", "DKL a", "DKL b", "DKL c",
                     "RGB extent R", "RGB extent G", "RGB extent B"});

    double sum_growth = 0.0;
    double g_sum[2] = {0.0, 0.0};
    double r_sum[2] = {0.0, 0.0};
    double b_sum[2] = {0.0, 0.0};
    int count = 0;
    for (int ri = 0; ri < 3; ++ri) {
        for (int gi = 0; gi < 3; ++gi) {
            for (int bi = 0; bi < 3; ++bi) {
                const Vec3 rgb(0.2 + 0.3 * ri, 0.2 + 0.3 * gi,
                               0.2 + 0.3 * bi);
                Vec3 extent5;
                Vec3 extent25;
                for (int which = 0; which < 2; ++which) {
                    const double ecc = which == 0 ? 5.0 : 25.0;
                    const Vec3 axes = model.semiAxes(rgb, ecc);
                    Vec3 extent;
                    for (std::size_t k = 0; k < 3; ++k)
                        extent[k] = inv.row(k).cwiseMul(axes).norm();
                    (which == 0 ? extent5 : extent25) = extent;
                    r_sum[which] += extent.x;
                    g_sum[which] += extent.y;
                    b_sum[which] += extent.z;
                    char color_buf[48];
                    std::snprintf(color_buf, sizeof color_buf,
                                  "(%.1f, %.1f, %.1f)", rgb.x, rgb.y,
                                  rgb.z);
                    table.addRow({color_buf, fmtDouble(ecc, 0),
                                  fmtDouble(axes.x, 6),
                                  fmtDouble(axes.y, 6),
                                  fmtDouble(axes.z, 6),
                                  fmtDouble(extent.x, 4),
                                  fmtDouble(extent.y, 4),
                                  fmtDouble(extent.z, 4)});
                }
                sum_growth += extent25.z / extent5.z;
                ++count;
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nAggregate (paper's visual message):\n";
    std::cout << "  mean RGB half-extents at  5 deg: R="
              << fmtDouble(r_sum[0] / count, 4)
              << " G=" << fmtDouble(g_sum[0] / count, 4)
              << " B=" << fmtDouble(b_sum[0] / count, 4) << "\n";
    std::cout << "  mean RGB half-extents at 25 deg: R="
              << fmtDouble(r_sum[1] / count, 4)
              << " G=" << fmtDouble(g_sum[1] / count, 4)
              << " B=" << fmtDouble(b_sum[1] / count, 4) << "\n";
    std::cout << "  mean 25deg/5deg growth along B: "
              << fmtDouble(sum_growth / count, 2)
              << "x (ellipsoids grow with eccentricity)\n";
    std::cout << "  elongation at 25 deg (B/G): "
              << fmtDouble(b_sum[1] / g_sum[1], 1)
              << "x, (R/G): " << fmtDouble(r_sum[1] / g_sum[1], 1)
              << "x (elongated along R/B, tight along G)\n";
    return 0;
}
