/**
 * @file
 * Sec. 6.1 reproduction: CAU performance, area, and power overhead
 * (the paper's TSMC-7nm synthesis numbers, reproduced by the analytical
 * hardware model parameterized with the reported constants).
 */

#include <iostream>

#include "hw/cau_model.hh"
#include "metrics/report.hh"

using namespace pce;

int
main()
{
    const CauModel cau;

    TextTable table("Sec. 6.1: CAU overhead (paper value in brackets)");
    table.setHeader({"quantity", "model", "paper"});
    table.addRow({"CAU frequency (MHz)", fmtDouble(cau.frequencyMhz(), 1),
                  "166.7"});
    table.addRow({"pixels per CAU cycle (peak)",
                  std::to_string(cau.pixelsPerCauCycle()), "1536"});
    table.addRow({"PE count", std::to_string(cau.peCount()), "96"});
    table.addRow({"PE area total (mm^2)",
                  fmtDouble(cau.peAreaTotalMm2(), 3), "2.1"});
    table.addRow({"total area incl. buffers (mm^2)",
                  fmtDouble(cau.totalAreaMm2(), 3), "~2.13"});
    table.addRow({"total power (uW)",
                  fmtDouble(cau.totalPowerMw() * 1000.0, 1), "201.6"});
    table.addRow({"pending buffers (KB)",
                  fmtDouble(cau.pendingBufferBytes() / 1024.0, 1),
                  "36"});
    table.addRow({"compression delay @5408x2736 (us)",
                  fmtDouble(cau.compressionDelayUs(5408, 2736), 1),
                  "173.4"});
    table.addRow({"delay / 72FPS frame budget (%)",
                  fmtDouble(100.0 * cau.compressionDelayUs(5408, 2736) /
                                (1e6 / 72.0),
                            2),
                  "~1.2"});
    table.print(std::cout);

    std::cout << "\nContext: Snapdragon 865 die is 83.54 mm^2; the CAU "
                 "adds "
              << fmtDouble(100.0 * cau.totalAreaMm2() / 83.54, 1)
              << "% of that (paper: negligible).\n";

    // Sensitivity: how the PE count scales with CAU cycle time, the
    // ablation DESIGN.md calls out for the pipelining claim.
    TextTable sens("CAU sensitivity: cycle time vs PEs/area/delay");
    sens.setHeader({"cycle (ns)", "PEs", "area (mm^2)",
                    "delay @5408x2736 (us)"});
    for (double ns : {3.0, 4.5, 6.0, 9.0, 12.0}) {
        CauConfig config;
        config.cycleTimeNs = ns;
        const CauModel m(config);
        sens.addRow({fmtDouble(ns, 1), std::to_string(m.peCount()),
                     fmtDouble(m.totalAreaMm2(), 3),
                     fmtDouble(m.compressionDelayUs(5408, 2736), 1)});
    }
    sens.print(std::cout);
    return 0;
}
