/**
 * @file
 * Lossy-transport delivery bench: runs an animated scene sequence
 * through the full encode -> packetize -> lossy channel -> NACK/
 * retransmit -> deadline reassembly path (src/net) at a sweep of loss
 * rates, and appends a dated `"bench": "net_delivery"` record to
 * BENCH_encoder.json (schema in docs/PERF.md).
 *
 * Per loss point p in {0%, 10%, 25%} the record carries:
 *  - loss<p>_delivered_tile_fraction — tiles decoded from the wire
 *    over tiles total (the rest degraded to temporal hold or fill);
 *  - loss<p>_foveal_intact_rate — fraction of frames whose foveal
 *    region (<= fovealCutoffDeg) arrived fully intact, the QoS number
 *    foveal-priority scheduling exists for;
 *  - loss<p>_retransmit_overhead — retransmitted bytes over all bytes
 *    sent (what the NACK loop cost);
 *  - loss<p>_effective_psnr_db — PSNR of the degraded output against
 *    the clean encode of the same frame (capped at 99 dB; byte-exact
 *    delivery is infinite).
 *
 * At 0% loss the run aborts unless every frame reassembles
 * byte-identically (manifest CRC-32 proof) — the bench doubles as the
 * end-to-end transparency check.
 *
 * A second, adaptive sweep runs the step and burst time-varying loss
 * schedules (net/rate_control.hh) under a persistent RateController
 * and records, per schedule: `adaptive_<s>_convergence_frames`
 * (frames after the loss ends until byte-identical delivery returns),
 * `adaptive_<s>_mean_budget_bytes_per_round`,
 * `adaptive_<s>_foveal_intact_rate`, and
 * `adaptive_<s>_delivered_tile_fraction`, gated by the
 * `adaptive_loss_schedules` field for records predating the
 * controller.
 *
 * Knobs (environment): PCE_BENCH_WIDTH / PCE_BENCH_HEIGHT (default
 * 512x512), PCE_BENCH_NET_FRAMES (frames per loss point, default 12),
 * PCE_BENCH_THREADS. Output path: argv[1] or PCE_BENCH_OUT, default
 * BENCH_encoder.json.
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "net/delivery.hh"
#include "simd/tile_kernels.hh"

#ifdef PCE_HAVE_GIT_REV_HEADER
#include "pce_git_rev.h"  // build-time stamp (cmake/git_rev.cmake)
#endif
#ifndef PCE_GIT_REV
#define PCE_GIT_REV "unknown"
#endif

namespace {

using namespace pce;

struct LossPointResult
{
    int lossPercent = 0;
    double deliveredTileFraction = 0.0;
    double fovealIntactRate = 0.0;
    double retransmitOverhead = 0.0;
    double effectivePsnrDb = 0.0;
};

struct ScheduleResult
{
    net::LossScheduleId schedule = net::LossScheduleId::Step;
    int frames = 0;
    /** Frames after the last lossy frame until full (byte-identical)
     *  delivery returned; 0 = the very next frame, -1 = never within
     *  the run. */
    int convergenceFrames = -1;
    double meanBudgetBytesPerRound = 0.0;
    double fovealIntactRate = 0.0;
    double deliveredTileFraction = 0.0;
};

/**
 * Adaptive sweep: one time-varying loss schedule (rate_control.hh)
 * over @p streams with a persistent RateController. The controller's
 * floor is provisioned at ~1.1x the clean-channel need, so the
 * schedule's clean head is transparent and convergence measures how
 * fast the estimator's derate decays after the loss ends.
 */
ScheduleResult
runSchedule(net::LossScheduleId schedule,
            const std::vector<std::vector<std::uint8_t>> &streams,
            const EccentricityMap &ecc, std::size_t max_wire_bytes)
{
    const int frames = static_cast<int>(streams.size());
    net::LossyChannelConfig ch;
    ch.seed = 0xada97 + static_cast<std::uint64_t>(schedule);
    net::LossyChannel channel(ch);

    net::SenderPolicy policy;
    policy.sessionId = 0x5e55;
    policy.streamId = 2;
    policy.adaptiveRate = true;
    policy.rateControl.minBudgetBytesPerRound =
        max_wire_bytes + max_wire_bytes / 10 +
        static_cast<std::size_t>(policy.deadlineRounds) * policy.mtuBytes;
    policy.rateControl.minBudgetBytesPerRound /=
        static_cast<std::size_t>(policy.deadlineRounds);
    policy.rateControl.initialBudgetBytesPerRound =
        policy.rateControl.minBudgetBytesPerRound;
    policy.rateControl.maxBudgetBytesPerRound = max_wire_bytes;
    policy.rateControl.additiveIncreaseBytes =
        std::max<std::size_t>(1200, max_wire_bytes / 64);
    policy.rateControl.multiplicativeDecrease = 0.9;

    net::ReassemblerParams rp;
    rp.sessionId = policy.sessionId;
    net::FrameReassembler rx(rp);
    net::RateController rate(policy.rateControl);

    ScheduleResult res;
    res.schedule = schedule;
    res.frames = frames;
    std::size_t tiles_total = 0, tiles_delivered = 0;
    int foveal_intact_frames = 0;
    double budget_sum = 0.0;
    int last_lossy = -1;
    int first_identical_after_loss = -1;

    ImageU8 delivered;
    for (int f = 0; f < frames; ++f) {
        const double drop =
            net::scheduledDropRate(schedule, f, frames);
        channel.setDropRate(drop);
        if (drop > 0.0) {
            last_lossy = f;
            first_identical_after_loss = -1;
        }
        const net::DeliveryReport rep = net::deliverFrame(
            streams[static_cast<std::size_t>(f)],
            static_cast<std::uint64_t>(f), &ecc, channel, rx,
            delivered, policy, &rate);
        tiles_total += rep.frame.totalTiles;
        tiles_delivered += rep.frame.deliveredTiles;
        if (rep.fovealIntact)
            ++foveal_intact_frames;
        budget_sum +=
            static_cast<double>(rep.frame.budgetBytesPerRound);
        if (drop == 0.0 && last_lossy >= 0 &&
            first_identical_after_loss < 0 && rep.frame.byteIdentical)
            first_identical_after_loss = f;
    }
    res.convergenceFrames =
        last_lossy >= 0 && first_identical_after_loss >= 0
            ? first_identical_after_loss - last_lossy - 1
            : -1;
    res.meanBudgetBytesPerRound =
        frames ? budget_sum / frames : 0.0;
    res.fovealIntactRate =
        frames ? static_cast<double>(foveal_intact_frames) / frames
               : 1.0;
    res.deliveredTileFraction =
        tiles_total ? static_cast<double>(tiles_delivered) / tiles_total
                    : 1.0;
    return res;
}

LossPointResult
runLossPoint(const PerceptualEncoder &enc, const EccentricityMap &ecc,
             int loss_percent, int frames, int w, int h)
{
    net::LossyChannelConfig ch;
    ch.dropRate = loss_percent / 100.0;
    if (loss_percent > 0) {
        ch.duplicateRate = 0.02;
        ch.corruptRate = 0.02;
        ch.reorderRate = 0.10;
    }
    ch.seed = 0xbe7ce11 + static_cast<std::uint64_t>(loss_percent);
    net::LossyChannel channel(ch);

    net::SenderPolicy policy;
    policy.sessionId = 0x5e55;
    policy.streamId = 1;
    net::ReassemblerParams rp;
    rp.sessionId = policy.sessionId;
    net::FrameReassembler rx(rp);

    LossPointResult res;
    res.lossPercent = loss_percent;
    std::size_t tiles_total = 0, tiles_delivered = 0;
    std::size_t bytes_sent = 0, bytes_retx = 0;
    int foveal_intact_frames = 0;
    double psnr_sum = 0.0;

    EncodedFrame encoded;
    ImageU8 delivered;
    for (int i = 0; i < frames; ++i) {
        RenderOptions opt;
        opt.width = w;
        opt.height = h;
        opt.time = 20.0 * i / frames;
        const ImageF frame = renderScene(SceneId::Skyline, opt);
        enc.encodeFrameInto(frame, ecc, encoded);

        const net::DeliveryReport rep = net::deliverFrame(
            encoded.bdStream, static_cast<std::uint64_t>(i), &ecc,
            channel, rx, delivered, policy);
        tiles_total += rep.frame.totalTiles;
        tiles_delivered += rep.frame.deliveredTiles;
        bytes_sent += rep.bytesSent;
        bytes_retx += rep.retransmittedBytes;
        if (rep.fovealIntact)
            ++foveal_intact_frames;
        psnr_sum += std::min(
            99.0, psnr(delivered, encoded.adjustedSrgb));

        if (loss_percent == 0 && !rep.frame.byteIdentical) {
            std::cerr << "net_runner: frame " << i
                      << " not byte-identical over a clean channel\n";
            std::abort();
        }
    }
    res.deliveredTileFraction =
        tiles_total ? static_cast<double>(tiles_delivered) / tiles_total
                    : 1.0;
    res.fovealIntactRate =
        frames ? static_cast<double>(foveal_intact_frames) / frames
               : 1.0;
    res.retransmitOverhead =
        bytes_sent ? static_cast<double>(bytes_retx) / bytes_sent : 0.0;
    res.effectivePsnrDb = frames ? psnr_sum / frames : 0.0;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const int threads = bench::benchThreads();
    const int frames =
        static_cast<int>(envInt("PCE_BENCH_NET_FRAMES", 12));
    if (w < 8 || h < 8 || frames < 1) {
        std::cerr << "net_runner: frame must be >= 8x8 and "
                     "PCE_BENCH_NET_FRAMES >= 1\n";
        return 1;
    }
    std::string out_path = "BENCH_encoder.json";
    if (argc > 1)
        out_path = argv[1];
    else if (const char *env = std::getenv("PCE_BENCH_OUT"))
        out_path = env;

    const DisplayGeometry geom = bench::benchDisplay(w, h);
    const EccentricityMap ecc(geom);
    PipelineParams pp;
    pp.threads = threads;
    const PerceptualEncoder enc(bench::benchModel(), pp);

    std::cout << "net delivery: " << w << "x" << h << ", " << frames
              << " frames per loss point, loss sweep {0, 10, 25}%...\n";
    std::vector<LossPointResult> results;
    for (const int loss : {0, 10, 25})
        results.push_back(runLossPoint(enc, ecc, loss, frames, w, h));

    // Adaptive rate-control sweep over time-varying schedules. The
    // content is encoded once and replayed per schedule so the two
    // runs differ only in channel history.
    const int adaptive_frames = std::max(24, frames);
    std::cout << "adaptive sweep: {step, burst} schedules, "
              << adaptive_frames << " frames each...\n";
    std::vector<std::vector<std::uint8_t>> streams;
    std::size_t max_wire = 0;
    {
        EncodedFrame encoded;
        net::PacketizerParams pkp;
        for (int i = 0; i < adaptive_frames; ++i) {
            RenderOptions opt;
            opt.width = w;
            opt.height = h;
            opt.time = 20.0 * i / adaptive_frames;
            enc.encodeFrameInto(renderScene(SceneId::Skyline, opt),
                                ecc, encoded);
            streams.push_back(encoded.bdStream);
            max_wire = std::max(
                max_wire,
                net::packetizeFrame(encoded.bdStream,
                                    static_cast<std::uint64_t>(i),
                                    &ecc, pkp)
                    .wireBytes);
        }
    }
    std::vector<ScheduleResult> schedules;
    for (const net::LossScheduleId id :
         {net::LossScheduleId::Step, net::LossScheduleId::Burst})
        schedules.push_back(runSchedule(id, streams, ecc, max_wire));

    std::ostringstream rec;
    rec << "  {\n"
        << "    \"bench\": \"net_delivery\",\n"
        << "    \"date\": \"" << bench::isoNowUtc() << "\",\n"
        << "    \"git_rev\": \"" << PCE_GIT_REV << "\",\n"
        << "    \"simd_level\": \""
        << simd::simdLevelName(simd::activeSimdLevel()) << "\",\n"
        << "    \"width\": " << w << ",\n"
        << "    \"height\": " << h << ",\n"
        << "    \"repeats\": " << frames << ",\n"
        << "    \"hw_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "    \"mt_threads\": " << threads << ",\n"
        << "    \"mt_pool_workers\": " << (threads - 1) << ",\n"
        << "    \"frames_per_loss_point\": " << frames;
    for (const LossPointResult &r : results) {
        const std::string p = "loss" + std::to_string(r.lossPercent);
        rec << ",\n    \"" << p
            << "_delivered_tile_fraction\": " << r.deliveredTileFraction
            << ",\n    \"" << p
            << "_foveal_intact_rate\": " << r.fovealIntactRate
            << ",\n    \"" << p
            << "_retransmit_overhead\": " << r.retransmitOverhead
            << ",\n    \"" << p
            << "_effective_psnr_db\": " << r.effectivePsnrDb;
    }
    // Presence gate for the adaptive fields (the schema test skips
    // them on records predating the rate controller).
    rec << ",\n    \"adaptive_loss_schedules\": \"";
    for (std::size_t i = 0; i < schedules.size(); ++i)
        rec << (i ? "," : "")
            << net::lossScheduleName(schedules[i].schedule);
    rec << "\",\n    \"adaptive_frames\": " << adaptive_frames;
    for (const ScheduleResult &r : schedules) {
        const std::string p =
            std::string("adaptive_") + net::lossScheduleName(r.schedule);
        rec << ",\n    \"" << p
            << "_convergence_frames\": " << r.convergenceFrames
            << ",\n    \"" << p << "_mean_budget_bytes_per_round\": "
            << r.meanBudgetBytesPerRound << ",\n    \"" << p
            << "_foveal_intact_rate\": " << r.fovealIntactRate
            << ",\n    \"" << p
            << "_delivered_tile_fraction\": " << r.deliveredTileFraction;
    }
    rec << "\n  }";
    bench::appendJsonRecord(out_path, rec.str());

    std::cout << "simd level: "
              << simd::simdLevelName(simd::activeSimdLevel())
              << " (git " << PCE_GIT_REV << ")\n"
              << "loss   delivered  foveal-intact  retx-overhead  "
                 "psnr\n";
    for (const LossPointResult &r : results)
        std::printf("%3d%%   %8.4f   %12.4f   %12.4f   %6.2f dB\n",
                    r.lossPercent, r.deliveredTileFraction,
                    r.fovealIntactRate, r.retransmitOverhead,
                    r.effectivePsnrDb);
    std::cout << "sched  converge  mean-budget  foveal-intact  "
                 "delivered\n";
    for (const ScheduleResult &r : schedules)
        std::printf("%-5s  %8d   %10.0f   %12.4f   %8.4f\n",
                    net::lossScheduleName(r.schedule),
                    r.convergenceFrames, r.meanBudgetBytesPerRound,
                    r.fovealIntactRate, r.deliveredTileFraction);
    std::cout << "appended record to " << out_path << "\n";
    return 0;
}
