/**
 * @file
 * Lossy-transport delivery bench: runs an animated scene sequence
 * through the full encode -> packetize -> lossy channel -> NACK/
 * retransmit -> deadline reassembly path (src/net) at a sweep of loss
 * rates, and appends a dated `"bench": "net_delivery"` record to
 * BENCH_encoder.json (schema in docs/PERF.md).
 *
 * Per loss point p in {0%, 10%, 25%} the record carries:
 *  - loss<p>_delivered_tile_fraction — tiles decoded from the wire
 *    over tiles total (the rest degraded to temporal hold or fill);
 *  - loss<p>_foveal_intact_rate — fraction of frames whose foveal
 *    region (<= fovealCutoffDeg) arrived fully intact, the QoS number
 *    foveal-priority scheduling exists for;
 *  - loss<p>_retransmit_overhead — retransmitted bytes over all bytes
 *    sent (what the NACK loop cost);
 *  - loss<p>_effective_psnr_db — PSNR of the degraded output against
 *    the clean encode of the same frame (capped at 99 dB; byte-exact
 *    delivery is infinite).
 *
 * At 0% loss the run aborts unless every frame reassembles
 * byte-identically (manifest CRC-32 proof) — the bench doubles as the
 * end-to-end transparency check.
 *
 * Knobs (environment): PCE_BENCH_WIDTH / PCE_BENCH_HEIGHT (default
 * 512x512), PCE_BENCH_NET_FRAMES (frames per loss point, default 12),
 * PCE_BENCH_THREADS. Output path: argv[1] or PCE_BENCH_OUT, default
 * BENCH_encoder.json.
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "net/delivery.hh"
#include "simd/tile_kernels.hh"

#ifdef PCE_HAVE_GIT_REV_HEADER
#include "pce_git_rev.h"  // build-time stamp (cmake/git_rev.cmake)
#endif
#ifndef PCE_GIT_REV
#define PCE_GIT_REV "unknown"
#endif

namespace {

using namespace pce;

struct LossPointResult
{
    int lossPercent = 0;
    double deliveredTileFraction = 0.0;
    double fovealIntactRate = 0.0;
    double retransmitOverhead = 0.0;
    double effectivePsnrDb = 0.0;
};

LossPointResult
runLossPoint(const PerceptualEncoder &enc, const EccentricityMap &ecc,
             int loss_percent, int frames, int w, int h)
{
    net::LossyChannelConfig ch;
    ch.dropRate = loss_percent / 100.0;
    if (loss_percent > 0) {
        ch.duplicateRate = 0.02;
        ch.corruptRate = 0.02;
        ch.reorderRate = 0.10;
    }
    ch.seed = 0xbe7ce11 + static_cast<std::uint64_t>(loss_percent);
    net::LossyChannel channel(ch);

    net::SenderPolicy policy;
    policy.sessionId = 0x5e55;
    policy.streamId = 1;
    net::ReassemblerParams rp;
    rp.sessionId = policy.sessionId;
    net::FrameReassembler rx(rp);

    LossPointResult res;
    res.lossPercent = loss_percent;
    std::size_t tiles_total = 0, tiles_delivered = 0;
    std::size_t bytes_sent = 0, bytes_retx = 0;
    int foveal_intact_frames = 0;
    double psnr_sum = 0.0;

    EncodedFrame encoded;
    ImageU8 delivered;
    for (int i = 0; i < frames; ++i) {
        RenderOptions opt;
        opt.width = w;
        opt.height = h;
        opt.time = 20.0 * i / frames;
        const ImageF frame = renderScene(SceneId::Skyline, opt);
        enc.encodeFrameInto(frame, ecc, encoded);

        const net::DeliveryReport rep = net::deliverFrame(
            encoded.bdStream, static_cast<std::uint64_t>(i), &ecc,
            channel, rx, delivered, policy);
        tiles_total += rep.frame.totalTiles;
        tiles_delivered += rep.frame.deliveredTiles;
        bytes_sent += rep.bytesSent;
        bytes_retx += rep.retransmittedBytes;
        if (rep.fovealIntact)
            ++foveal_intact_frames;
        psnr_sum += std::min(
            99.0, psnr(delivered, encoded.adjustedSrgb));

        if (loss_percent == 0 && !rep.frame.byteIdentical) {
            std::cerr << "net_runner: frame " << i
                      << " not byte-identical over a clean channel\n";
            std::abort();
        }
    }
    res.deliveredTileFraction =
        tiles_total ? static_cast<double>(tiles_delivered) / tiles_total
                    : 1.0;
    res.fovealIntactRate =
        frames ? static_cast<double>(foveal_intact_frames) / frames
               : 1.0;
    res.retransmitOverhead =
        bytes_sent ? static_cast<double>(bytes_retx) / bytes_sent : 0.0;
    res.effectivePsnrDb = frames ? psnr_sum / frames : 0.0;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const int threads = bench::benchThreads();
    const int frames =
        static_cast<int>(envInt("PCE_BENCH_NET_FRAMES", 12));
    if (w < 8 || h < 8 || frames < 1) {
        std::cerr << "net_runner: frame must be >= 8x8 and "
                     "PCE_BENCH_NET_FRAMES >= 1\n";
        return 1;
    }
    std::string out_path = "BENCH_encoder.json";
    if (argc > 1)
        out_path = argv[1];
    else if (const char *env = std::getenv("PCE_BENCH_OUT"))
        out_path = env;

    const DisplayGeometry geom = bench::benchDisplay(w, h);
    const EccentricityMap ecc(geom);
    PipelineParams pp;
    pp.threads = threads;
    const PerceptualEncoder enc(bench::benchModel(), pp);

    std::cout << "net delivery: " << w << "x" << h << ", " << frames
              << " frames per loss point, loss sweep {0, 10, 25}%...\n";
    std::vector<LossPointResult> results;
    for (const int loss : {0, 10, 25})
        results.push_back(runLossPoint(enc, ecc, loss, frames, w, h));

    std::ostringstream rec;
    rec << "  {\n"
        << "    \"bench\": \"net_delivery\",\n"
        << "    \"date\": \"" << bench::isoNowUtc() << "\",\n"
        << "    \"git_rev\": \"" << PCE_GIT_REV << "\",\n"
        << "    \"simd_level\": \""
        << simd::simdLevelName(simd::activeSimdLevel()) << "\",\n"
        << "    \"width\": " << w << ",\n"
        << "    \"height\": " << h << ",\n"
        << "    \"repeats\": " << frames << ",\n"
        << "    \"hw_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "    \"mt_threads\": " << threads << ",\n"
        << "    \"mt_pool_workers\": " << (threads - 1) << ",\n"
        << "    \"frames_per_loss_point\": " << frames;
    for (const LossPointResult &r : results) {
        const std::string p = "loss" + std::to_string(r.lossPercent);
        rec << ",\n    \"" << p
            << "_delivered_tile_fraction\": " << r.deliveredTileFraction
            << ",\n    \"" << p
            << "_foveal_intact_rate\": " << r.fovealIntactRate
            << ",\n    \"" << p
            << "_retransmit_overhead\": " << r.retransmitOverhead
            << ",\n    \"" << p
            << "_effective_psnr_db\": " << r.effectivePsnrDb;
    }
    rec << "\n  }";
    bench::appendJsonRecord(out_path, rec.str());

    std::cout << "simd level: "
              << simd::simdLevelName(simd::activeSimdLevel())
              << " (git " << PCE_GIT_REV << ")\n"
              << "loss   delivered  foveal-intact  retx-overhead  "
                 "psnr\n";
    for (const LossPointResult &r : results)
        std::printf("%3d%%   %8.4f   %12.4f   %12.4f   %6.2f dB\n",
                    r.lossPercent, r.deliveredTileFraction,
                    r.fovealIntactRate, r.retransmitOverhead,
                    r.effectivePsnrDb);
    std::cout << "appended record to " << out_path << "\n";
    return 0;
}
