/**
 * @file
 * Shared setup for the figure/table reproduction benches.
 *
 * Every bench renders the six scenes at a per-eye resolution taken from
 * the environment (PCE_BENCH_WIDTH / PCE_BENCH_HEIGHT, default 512x512)
 * so users can scale runs from CI-sized to paper-sized. Threads default
 * to the hardware concurrency (PCE_BENCH_THREADS).
 */

#ifndef PCE_BENCH_BENCH_COMMON_HH
#define PCE_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "common/env.hh"
#include "core/pipeline.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"
#include "render/scenes.hh"

namespace pce::bench {

/** Per-eye bench resolution from the environment. */
inline int
benchWidth()
{
    return static_cast<int>(envInt("PCE_BENCH_WIDTH", 512));
}

inline int
benchHeight()
{
    return static_cast<int>(envInt("PCE_BENCH_HEIGHT", 512));
}

inline int
benchThreads()
{
    const long def = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<int>(envInt("PCE_BENCH_THREADS", def));
}

/** Centered-fixation display geometry for the bench resolution. */
inline DisplayGeometry
benchDisplay(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

/** The population discrimination model used across all benches. */
inline const AnalyticDiscriminationModel &
benchModel()
{
    static const AnalyticDiscriminationModel model;
    return model;
}

/** UTC timestamp, ISO 8601 — the `date` field of bench records. */
inline std::string
isoNowUtc()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

/**
 * Append @p record (one JSON object, pre-indented two spaces) to the
 * JSON array in @p path — the shared trajectory-file writer of every
 * runner that feeds BENCH_encoder.json (record schema: docs/PERF.md).
 * A missing/empty file starts a new array; a legacy single-object
 * snapshot is wrapped into an array with the new record appended
 * after it. Write-temp-then-rename so a crash or full disk mid-write
 * cannot destroy the accumulated trajectory.
 */
inline void
appendJsonRecord(const std::string &path, const std::string &record)
{
    std::string existing;
    {
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        existing = ss.str();
    }
    const auto is_space = [](char c) {
        return c == '\n' || c == ' ' || c == '\t' || c == '\r';
    };
    while (!existing.empty() && is_space(existing.back()))
        existing.pop_back();
    std::size_t start = 0;
    while (start < existing.size() && is_space(existing[start]))
        ++start;
    existing.erase(0, start);

    std::string merged;
    if (!existing.empty() && existing.front() == '[' &&
        existing.back() == ']') {
        existing.pop_back();
        while (!existing.empty() && is_space(existing.back()))
            existing.pop_back();
        merged = existing == "["
                     ? "[\n" + record + "\n]\n"  // was an empty array
                     : existing + ",\n" + record + "\n]\n";
    } else if (!existing.empty() && existing.front() == '{' &&
               existing.back() == '}') {
        // Legacy single-object snapshot: preserve it as record zero.
        merged = "[\n" + existing + ",\n" + record + "\n]\n";
    } else {
        // Empty, truncated, or unrecognized content: wrapping it would
        // produce invalid JSON, so start the trajectory fresh.
        merged = "[\n" + record + "\n]\n";
    }

    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::trunc);
        out << merged;
        out.flush();
        if (!out) {
            std::cerr << "bench: failed writing " << tmp_path << "\n";
            std::remove(tmp_path.c_str());
            return;
        }
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0)
        std::cerr << "bench: failed replacing " << path << "\n";
}

} // namespace pce::bench

#endif // PCE_BENCH_BENCH_COMMON_HH
