/**
 * @file
 * Shared setup for the figure/table reproduction benches.
 *
 * Every bench renders the six scenes at a per-eye resolution taken from
 * the environment (PCE_BENCH_WIDTH / PCE_BENCH_HEIGHT, default 512x512)
 * so users can scale runs from CI-sized to paper-sized. Threads default
 * to the hardware concurrency (PCE_BENCH_THREADS).
 */

#ifndef PCE_BENCH_BENCH_COMMON_HH
#define PCE_BENCH_BENCH_COMMON_HH

#include <thread>

#include "common/env.hh"
#include "core/pipeline.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"
#include "render/scenes.hh"

namespace pce::bench {

/** Per-eye bench resolution from the environment. */
inline int
benchWidth()
{
    return static_cast<int>(envInt("PCE_BENCH_WIDTH", 512));
}

inline int
benchHeight()
{
    return static_cast<int>(envInt("PCE_BENCH_HEIGHT", 512));
}

inline int
benchThreads()
{
    const long def = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<int>(envInt("PCE_BENCH_THREADS", def));
}

/** Centered-fixation display geometry for the bench resolution. */
inline DisplayGeometry
benchDisplay(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

/** The population discrimination model used across all benches. */
inline const AnalyticDiscriminationModel &
benchModel()
{
    static const AnalyticDiscriminationModel model;
    return model;
}

} // namespace pce::bench

#endif // PCE_BENCH_BENCH_COMMON_HH
