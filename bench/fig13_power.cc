/**
 * @file
 * Fig. 13 reproduction: power saving over BD at the Quest 2 display
 * modes — resolutions {4128x2096, 5408x2736} x frame rates
 * {72, 80, 90, 120} — using the DRAM energy model (3477 pJ/pixel
 * LPDDR4) and subtracting the CAU's own power (Sec. 6.2).
 *
 * The per-scene bits/pixel of BD and our encoder are measured at the
 * bench resolution and applied to the full-resolution pixel counts
 * (bits/pixel is resolution-stable for tile codecs to first order).
 */

#include <iostream>

#include "bd/bd_codec.hh"
#include "bench_common.hh"
#include "hw/cau_model.hh"
#include "hw/dram_model.hh"
#include "metrics/report.hh"

using namespace pce;

int
main()
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const EccentricityMap ecc(bench::benchDisplay(w, h));

    PipelineParams params;
    params.threads = bench::benchThreads();
    const PerceptualEncoder encoder(bench::benchModel(), params);
    const BdCodec bd(4);

    // Mean bits/pixel over the six scenes.
    double bd_bpp = 0.0;
    double ours_bpp = 0.0;
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
        bd_bpp += bd.analyze(toSrgb8(frame)).bitsPerPixel();
        ours_bpp +=
            encoder.encodeFrame(frame, ecc).bdStats.bitsPerPixel();
    }
    bd_bpp /= 6.0;
    ours_bpp /= 6.0;
    std::cout << "Measured mean bits/pixel: BD=" << fmtDouble(bd_bpp, 2)
              << " ours=" << fmtDouble(ours_bpp, 2) << "\n\n";

    const CauModel cau;
    const DramModel dram;

    TextTable table("Fig. 13: power saving over BD (mW)");
    table.setHeader({"resolution", "72 FPS", "80 FPS", "90 FPS",
                     "120 FPS", "CAU meets rate?"});

    const std::pair<int, int> resolutions[] = {{4128, 2096},
                                               {5408, 2736}};
    double lowest = 1e300;
    double highest = -1e300;
    for (const auto &[rw, rh] : resolutions) {
        const double pixels = static_cast<double>(rw) * rh;
        std::vector<std::string> row{std::to_string(rw) + "x" +
                                     std::to_string(rh)};
        bool meets = true;
        for (double fps : {72.0, 80.0, 90.0, 120.0}) {
            const double bd_bytes = pixels * bd_bpp / 8.0;
            const double ours_bytes = pixels * ours_bpp / 8.0;
            const double saving = dram.powerSavingMw(
                bd_bytes, ours_bytes, fps, cau.totalPowerMw());
            row.push_back(fmtDouble(saving, 1));
            lowest = std::min(lowest, saving);
            highest = std::max(highest, saving);
            meets &= cau.meetsFrameRate(rw, rh, fps);
        }
        row.push_back(meets ? "yes" : "no");
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nPaper: 180.3 mW at the lowest mode, 514.2 mW at the "
                 "highest, 307.2 mW average;\nCAU overhead "
              << fmtDouble(cau.totalPowerMw() * 1000.0, 1)
              << " uW is subtracted. Our model spans "
              << fmtDouble(lowest, 1) << " - " << fmtDouble(highest, 1)
              << " mW.\n";
    return 0;
}
