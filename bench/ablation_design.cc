/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  1. Axis choice (Sec. 3.4): optimize Blue only, Red only, or run both
 *     and pick the cheaper (the paper's design). Quantifies what the
 *     "pick the one with smaller delta" stage buys.
 *  2. Foveal cutoff (Sec. 5.1): compression vs. the kept foveal radius.
 *  3. Per-user calibration (Sec. 6.5): compression as the global model
 *     scale varies (a conservative-to-average observer sweep).
 */

#include <iostream>

#include "bd/bd_codec.hh"
#include "bench_common.hh"
#include "core/adjust.hh"
#include "metrics/report.hh"

using namespace pce;

namespace {

/** Encode a frame with a forced axis (-1 = paper's pick-better). */
double
bppWithAxis(const ImageF &frame, const EccentricityMap &ecc,
            const DiscriminationModel &model, int axis)
{
    const int tile_size = 4;
    const TileAdjuster adjuster(model);
    ImageF out = frame;
    for (const TileRect &rect :
         tileGrid(frame.width(), frame.height(), tile_size)) {
        std::vector<Vec3> pixels;
        std::vector<double> eccs;
        double min_ecc = 1e300;
        for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
            for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
                pixels.push_back(frame.at(x, y));
                eccs.push_back(ecc.at(x, y));
                min_ecc = std::min(min_ecc, eccs.back());
            }
        }
        if (min_ecc < 5.0)
            continue;
        std::vector<Vec3> adjusted;
        if (axis < 0) {
            adjusted = adjuster.adjustTile(pixels, eccs).adjusted;
        } else {
            adjusted =
                adjuster.adjustAlongAxis(pixels, eccs, axis).adjusted;
        }
        std::size_t k = 0;
        for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
            for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
                out.at(x, y) = adjusted[k++];
    }
    const BdCodec bd(tile_size);
    return bd.analyze(toSrgb8(out)).bitsPerPixel();
}

} // namespace

int
main()
{
    const int w = std::min<int>(pce::bench::benchWidth(), 384);
    const int h = std::min<int>(pce::bench::benchHeight(), 384);
    const EccentricityMap ecc(pce::bench::benchDisplay(w, h));
    const auto &model = pce::bench::benchModel();

    // --- Ablation 1: axis selection ---------------------------------
    TextTable ax("Ablation: optimization axis (bits/pixel, " +
                 std::to_string(w) + "x" + std::to_string(h) + ")");
    ax.setHeader({"scene", "BD", "Red only", "Blue only",
                  "pick better (paper)"});
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
        const BdCodec bd(4);
        ax.addRow({sceneName(id),
                   fmtDouble(bd.analyze(toSrgb8(frame)).bitsPerPixel(),
                             2),
                   fmtDouble(bppWithAxis(frame, ecc, model, 0), 2),
                   fmtDouble(bppWithAxis(frame, ecc, model, 2), 2),
                   fmtDouble(bppWithAxis(frame, ecc, model, -1), 2)});
    }
    ax.print(std::cout);
    std::cout << "\n";

    // --- Ablation 2: foveal cutoff ----------------------------------
    TextTable fov("Ablation: foveal cutoff radius vs compression");
    fov.setHeader({"cutoff (deg)", "mean bits/pixel",
                   "bypassed tiles (%)"});
    for (double cutoff : {0.0, 2.5, 5.0, 10.0, 20.0}) {
        double bpp_sum = 0.0;
        double bypass_sum = 0.0;
        for (SceneId id : allScenes()) {
            const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
            PipelineParams params;
            params.fovealCutoffDeg = cutoff;
            params.threads = pce::bench::benchThreads();
            const PerceptualEncoder enc(model, params);
            PipelineStats stats;
            const ImageF adjusted =
                enc.adjustFrame(frame, ecc, &stats);
            const BdCodec bd(4);
            bpp_sum += bd.analyze(toSrgb8(adjusted)).bitsPerPixel();
            bypass_sum += 100.0 *
                          static_cast<double>(stats.fovealBypassTiles) /
                          static_cast<double>(stats.totalTiles);
        }
        fov.addRow({fmtDouble(cutoff, 1), fmtDouble(bpp_sum / 6.0, 2),
                    fmtDouble(bypass_sum / 6.0, 1)});
    }
    fov.print(std::cout);
    std::cout << "\n";

    // --- Ablation 3: per-user model scale (Sec. 6.5) ----------------
    TextTable cal("Ablation: per-user calibration scale vs compression");
    cal.setHeader({"model scale", "mean bits/pixel",
                   "reduction vs raw (%)"});
    for (double scale : {0.25, 0.5, 0.75, 1.0, 1.5}) {
        AnalyticModelParams params;
        params.globalScale = scale;
        const AnalyticDiscriminationModel scaled(params);
        double bpp_sum = 0.0;
        for (SceneId id : allScenes()) {
            const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
            PipelineParams pparams;
            pparams.threads = pce::bench::benchThreads();
            const PerceptualEncoder enc(scaled, pparams);
            bpp_sum +=
                enc.encodeFrame(frame, ecc).bdStats.bitsPerPixel();
        }
        const double bpp = bpp_sum / 6.0;
        cal.addRow({fmtDouble(scale, 2), fmtDouble(bpp, 2),
                    fmtDouble(reductionVsRawPercent(bpp), 1)});
    }
    cal.print(std::cout);
    std::cout << "\nA conservative (smaller-threshold) per-user model "
                 "trades compression for safety margin; scale 1.0 is "
                 "the population average (Sec. 6.5).\n\n";

    // --- Ablation 4: gaze position ----------------------------------
    // The farther the fixation sits from frame center, the more pixels
    // land at high eccentricity (larger ellipsoids) -- gaze-tracked
    // encoding adapts every frame.
    TextTable gaze("Ablation: fixation position vs compression");
    gaze.setHeader({"fixation", "mean bits/pixel",
                    "mean eccentricity (deg)"});
    const struct
    {
        const char *name;
        double fx, fy;
    } fixations[] = {
        {"center", 0.5, 0.5},
        {"quarter", 0.25, 0.25},
        {"corner", 0.02, 0.02},
    };
    for (const auto &fix : fixations) {
        DisplayGeometry g = pce::bench::benchDisplay(w, h);
        g.fixationX = fix.fx * w;
        g.fixationY = fix.fy * h;
        const EccentricityMap gaze_ecc(g);
        double mean_ecc = 0.0;
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                mean_ecc += gaze_ecc.at(x, y);
        mean_ecc /= static_cast<double>(w) * h;

        double bpp_sum = 0.0;
        for (SceneId id : allScenes()) {
            const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
            PipelineParams pparams;
            pparams.threads = pce::bench::benchThreads();
            const PerceptualEncoder enc(model, pparams);
            bpp_sum += enc.encodeFrame(frame, gaze_ecc)
                           .bdStats.bitsPerPixel();
        }
        gaze.addRow({fix.name, fmtDouble(bpp_sum / 6.0, 2),
                     fmtDouble(mean_ecc, 1)});
    }
    gaze.print(std::cout);
    std::cout << "\nOff-center gaze pushes more pixels into deep "
                 "periphery and buys additional compression --\nthe "
                 "gaze-tracked deployment the paper assumes.\n";
    return 0;
}
