/**
 * @file
 * Trace capture runner: replays a seeded multi-stream gaze workload
 * through a sharded EncodeService and a seeded lossy delivery channel
 * with tracing ON, then saves the merged timeline as Chrome
 * trace-event JSON — the file loads directly in Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing.
 *
 * This is the observability counterpart of service_runner: instead of
 * appending throughput numbers it produces the artifact a human reads
 * when a latency number looks wrong. The workload mirrors the
 * deterministic e2e trace test (tests/obs/test_frame_trace.cc): two
 * gaze streams with one scripted saccade each, 2 dispatcher shards,
 * round-trip verification + integrity sealing, 25% packet drop with
 * fixed channel seeds, so consecutive runs produce the same event
 * counts.
 *
 * Output path: argv[1] or PCE_TRACE_OUT, default trace.json in the
 * working directory. Knobs: PCE_BENCH_WIDTH (square frame edge,
 * default 128), PCE_BENCH_FRAMES (frames per stream, default 8).
 * Also prints per-span-name count and total self-time so the hot
 * names are visible without opening the UI.
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "net/delivery.hh"
#include "obs/trace.hh"
#include "obs/trace_export.hh"
#include "service/encode_service.hh"

namespace {

using namespace pce;
using namespace std::chrono_literals;

DisplayGeometry
geometry(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

struct Workload
{
    std::vector<ImageF> frames;
    std::vector<GazeSample> gaze;
};

/** Seeded clip + scanpath with one saccade-speed jump at frame 3. */
Workload
workload(SceneId scene, int n, int frame_count, double phase)
{
    Workload w;
    double t = 0.0;
    for (int i = 0; i < frame_count; ++i) {
        w.frames.push_back(
            renderScene(scene, {n, n, 0, 0.2 * i + phase, 0}));
        t += (i == 3) ? 0.004 : 1.0;
        const double x = n / 2.0 + (i % 4) + (i == 3 ? n / 3.0 : 0.0);
        const double y = n / 2.0 + ((i * 2) % 5);
        w.gaze.push_back({t, x, y});
    }
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    const int n =
        static_cast<int>(pce::envInt("PCE_BENCH_WIDTH", 128));
    const int frames =
        static_cast<int>(pce::envInt("PCE_BENCH_FRAMES", 8));
    std::string out_path = "trace.json";
    if (argc > 1)
        out_path = argv[1];
    else if (const char *env = std::getenv("PCE_TRACE_OUT"))
        out_path = env;

    const DisplayGeometry geom = geometry(n, n);
    const EccentricityMap ecc(geom);
    const Workload wa = workload(SceneId::Office, n, frames, 0.0);
    const Workload wb = workload(SceneId::Thai, n, frames, 0.7);

    obs::setTraceEnabled(false);
    obs::Tracer::instance().reset();
    obs::Tracer::instance().nameThread("producer");

    ServiceParams sp;
    sp.shards = 2;
    sp.verifyRoundTrip = true;
    sp.hardenIntegrity = true;
    EncodeService svc(bench::benchModel(), sp);
    const StreamHandle ha = svc.openGazeStream("trace-a", geom);
    const StreamHandle hb = svc.openGazeStream("trace-b", geom);

    net::LossyChannelConfig cc;
    cc.dropRate = 0.25;
    cc.seed = 0xace0fba5e;
    net::LossyChannel cha(cc);
    cc.seed = 0xdecafbad;
    net::LossyChannel chb(cc);

    net::SenderPolicy pa;
    pa.sessionId = 0xa;
    pa.streamId = svc.streamTraceId(ha);
    net::SenderPolicy pb;
    pb.sessionId = 0xb;
    pb.streamId = svc.streamTraceId(hb);
    net::DeliverySession sa(svc, ha, cha, pa, &ecc);
    net::DeliverySession sb(svc, hb, chb, pb, &ecc);

    obs::setTraceEnabled(true);
    for (int i = 0; i < frames; ++i) {
        svc.submit(ha, wa.frames[i], wa.gaze[i]);
        svc.submit(hb, wb.frames[i], wb.gaze[i]);
        for (net::DeliverySession *s : {&sa, &sb}) {
            ImageU8 out;
            const net::DeliveryReport rep = s->deliverNext(out, 30000ms);
            if (rep.encodeTimedOut)
                std::abort();
        }
    }
    svc.drainAll();
    obs::setTraceEnabled(false);

    const std::vector<obs::TraceEvent> events =
        obs::Tracer::instance().collect();
    if (!obs::saveChromeTrace(out_path)) {
        std::cerr << "trace_runner: cannot write " << out_path << "\n";
        return 1;
    }

    struct NameAgg
    {
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
    };
    std::map<std::string, NameAgg> by_name;
    for (const obs::TraceEvent &e : events) {
        NameAgg &agg = by_name[e.name];
        ++agg.count;
        agg.totalNs += e.endNs - e.beginNs;
    }

    std::cout << 2 << " streams x " << frames << " frames at " << n
              << "x" << n << ", shards 2, drop 25%\n"
              << "recorded " << obs::Tracer::instance().recordedEvents()
              << " events on " << obs::Tracer::instance().threadCount()
              << " threads (dropped "
              << obs::Tracer::instance().droppedEvents() << ")\n";
    for (const auto &[name, agg] : by_name)
        std::cout << "  " << name << ": " << agg.count << " events, "
                  << static_cast<double>(agg.totalNs) / 1e6
                  << " ms total\n";
    std::cout << "wrote " << out_path
              << " (load in https://ui.perfetto.dev)\n";
    obs::Tracer::instance().reset();
    return 0;
}
