/**
 * @file
 * Temporal stability of the per-frame adjustment (extends Sec. 6.3,
 * where some participants noticed artifacts only during rapid eye/head
 * movement). For each scene, two consecutive 72 FPS frames are encoded
 * independently and the adjustment-induced temporal flicker is
 * measured — content motion is subtracted out, so a perfectly coherent
 * encoder scores zero.
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"
#include "metrics/temporal.hh"

using namespace pce;

int
main()
{
    const int w = std::min<int>(bench::benchWidth(), 384);
    const int h = std::min<int>(bench::benchHeight(), 384);
    const EccentricityMap ecc(bench::benchDisplay(w, h));

    PipelineParams params;
    params.threads = bench::benchThreads();
    const PerceptualEncoder encoder(bench::benchModel(), params);

    TextTable table("Temporal stability: adjustment-induced flicker "
                    "between consecutive 72 FPS frames");
    table.setHeader({"scene", "mean flicker (L1, linear)",
                     "max flicker", "pixels > 0.02",
                     "mean adjustment (context)"});

    const double dt = 1.0 / 72.0;
    for (SceneId id : allScenes()) {
        const ImageF orig_t = renderScene(id, {w, h, 0, 2.0, 0});
        const ImageF orig_t1 =
            renderScene(id, {w, h, 0, 2.0 + dt, 0});
        const ImageF adj_t = encoder.adjustFrame(orig_t, ecc);
        const ImageF adj_t1 = encoder.adjustFrame(orig_t1, ecc);
        const auto stats =
            temporalFlicker(orig_t, orig_t1, adj_t, adj_t1);

        double adj_mag = 0.0;
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x) {
                const Vec3 d = adj_t.at(x, y) - orig_t.at(x, y);
                adj_mag += std::abs(d.x) + std::abs(d.y) +
                           std::abs(d.z);
            }
        adj_mag /= static_cast<double>(orig_t.pixelCount());

        table.addRow({sceneName(id), fmtDouble(stats.meanFlicker, 4),
                      fmtDouble(stats.maxFlicker, 3),
                      fmtDouble(100.0 * stats.fractionAbove, 2) + "%",
                      fmtDouble(adj_mag, 4)});
    }
    table.print(std::cout);
    std::cout
        << "\nPer-frame independent adjustment carries some temporal "
           "incoherence on animated content --\nconsistent with the "
           "paper's motion-related artifact reports and a concrete "
           "target for the\ntemporal-hysteresis extension the paper "
           "leaves open.\n";
    return 0;
}
