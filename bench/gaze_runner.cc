/**
 * @file
 * Gaze-dynamics benchmark: what does per-frame re-fixation cost, and
 * what does the incremental updater buy over rebuilding the
 * eccentricity map from scratch every frame? Appends a dated
 * `"bench": "gaze_encode"` record to BENCH_encoder.json (schema in
 * docs/PERF.md).
 *
 * Two measurements, both best-of PCE_BENCH_REPEATS:
 *
 *  1. **Re-fixation microbench** — a smooth-pursuit scanpath drives
 *     one EccentricityMap through N re-fixations twice: through
 *     IncrementalEccentricity::refixate (shift + exact bands, with
 *     its documented fallback) and through EccentricityMap::rebuild
 *     (the exact full-rebuild baseline, same reused storage). Reports
 *     ms per re-fixation for each and the speedup.
 *
 *  2. **Moving-fixation encode** — the same pursuit scanpath under a
 *     full encode loop: PerceptualEncoder::encodeFrameGazeInto
 *     (incremental re-fixation per frame) versus rebuild-then-
 *     encodeFrameInto (what a gaze-naive deployment would do each
 *     frame). Reports MP/s for both. The pursuit path stays below the
 *     I-VT saccade threshold so both loops do identical adjustment
 *     work — the delta is purely the map update.
 *
 * Knobs (environment): PCE_BENCH_WIDTH / PCE_BENCH_HEIGHT /
 * PCE_BENCH_THREADS (shared with the other runners),
 * PCE_BENCH_GAZE_FRAMES (re-fixations / encoded frames per round,
 * default 96), PCE_BENCH_REPEATS (best-of rounds, default 3). Output
 * path: argv[1] or PCE_BENCH_OUT, default BENCH_encoder.json.
 */

#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "gaze/incremental_ecc.hh"
#include "simd/tile_kernels.hh"

#ifdef PCE_HAVE_GIT_REV_HEADER
#include "pce_git_rev.h"  // build-time stamp (cmake/git_rev.cmake)
#endif
#ifndef PCE_GIT_REV
#define PCE_GIT_REV "unknown"
#endif

namespace {

using namespace pce;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/**
 * A pursuit scanpath scaled to the display: slow enough to classify
 * as fixation at HMD rate on this geometry (both encode loops then do
 * identical adjustment work), fast enough that every frame moves the
 * fixation by multiple pixels.
 */
GazeTrace
pursuitPath(const DisplayGeometry &geom, int frames)
{
    const double radius = std::min(geom.width, geom.height) * 0.12;
    // One lap per 4 s at 72 Hz: peak speed 2*pi*r/4 px/s.
    GazeTrace t = smoothPursuitTrace(
        (frames - 1) / 72.0, 72.0, geom.width / 2.0,
        geom.height / 2.0, radius, 4.0);
    t.samples.resize(static_cast<std::size_t>(frames),
                     t.samples.empty() ? GazeSample{}
                                       : t.samples.back());
    return t;
}

struct RefixResult
{
    double incrementalMs = 0.0;  ///< per re-fixation
    double rebuildMs = 0.0;      ///< per re-fixation
    std::uint64_t fallbacks = 0; ///< full rebuilds the updater took
};

RefixResult
refixMicrobench(const DisplayGeometry &geom, const GazeTrace &path,
                int repeats)
{
    RefixResult best;
    for (int r = 0; r < repeats; ++r) {
        double inc_s = 0.0, reb_s = 0.0;
        std::uint64_t fallbacks = 0;
        {
            IncrementalEccentricity upd(geom);
            EccentricityMap map(geom);
            RefixStats st;
            const Clock::time_point t0 = Clock::now();
            for (const GazeSample &s : path.samples) {
                upd.refixate(map, s.x, s.y, &st);
                fallbacks += st.fullRebuild ? 1 : 0;
            }
            inc_s = seconds(t0, Clock::now());
            if (map.at(0, 0) < 0.0)
                std::abort();  // keep the work observable
        }
        {
            DisplayGeometry g = geom;
            EccentricityMap map(g);
            const Clock::time_point t0 = Clock::now();
            for (const GazeSample &s : path.samples) {
                g.fixationX = s.x;
                g.fixationY = s.y;
                map.rebuild(g);
            }
            reb_s = seconds(t0, Clock::now());
            if (map.at(0, 0) < 0.0)
                std::abort();
        }
        const double n = static_cast<double>(path.samples.size());
        const double inc_ms = inc_s / n * 1e3;
        const double reb_ms = reb_s / n * 1e3;
        if (r == 0 || inc_ms < best.incrementalMs)
            best.incrementalMs = inc_ms;
        if (r == 0 || reb_ms < best.rebuildMs)
            best.rebuildMs = reb_ms;
        best.fallbacks = fallbacks;  // deterministic per round
    }
    return best;
}

struct EncodeResult
{
    double gazeMps = 0.0;     ///< encodeFrameGazeInto loop
    double rebuildMps = 0.0;  ///< rebuild + encodeFrameInto loop
    std::uint64_t saccadeFrames = 0;
};

EncodeResult
movingEncodeBench(const DisplayGeometry &geom, const GazeTrace &path,
                  const ImageF &frame, int threads, int repeats)
{
    PipelineParams pp;
    pp.threads = threads;
    const PerceptualEncoder enc(bench::benchModel(), pp);
    const double mp =
        static_cast<double>(frame.pixelCount()) / 1e6 *
        static_cast<double>(path.samples.size());

    EncodeResult best;
    for (int r = 0; r < repeats; ++r) {
        double gaze_s = 0.0, rebuild_s = 0.0;
        std::uint64_t saccades = 0;
        {
            GazeTrackedEccentricity gaze(geom);
            EncodedFrame out;
            enc.encodeFrameGazeInto(frame, gaze,
                                    path.samples.front(), out);
            const Clock::time_point t0 = Clock::now();
            for (const GazeSample &s : path.samples) {
                if (enc.encodeFrameGazeInto(frame, gaze, s, out) ==
                    GazePhase::Saccade)
                    ++saccades;
                if (out.bdStream.empty())
                    std::abort();
            }
            gaze_s = seconds(t0, Clock::now());
        }
        {
            DisplayGeometry g = geom;
            EccentricityMap map(g);
            EncodedFrame out;
            enc.encodeFrameInto(frame, map, out);
            const Clock::time_point t0 = Clock::now();
            for (const GazeSample &s : path.samples) {
                g.fixationX = s.x;
                g.fixationY = s.y;
                map.rebuild(g);
                enc.encodeFrameInto(frame, map, out);
                if (out.bdStream.empty())
                    std::abort();
            }
            rebuild_s = seconds(t0, Clock::now());
        }
        best.gazeMps = std::max(best.gazeMps, mp / gaze_s);
        best.rebuildMps = std::max(best.rebuildMps, mp / rebuild_s);
        best.saccadeFrames = saccades;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const int threads = bench::benchThreads();
    const int frames =
        static_cast<int>(envInt("PCE_BENCH_GAZE_FRAMES", 96));
    const int repeats =
        static_cast<int>(envInt("PCE_BENCH_REPEATS", 3));
    if (frames < 2 || repeats < 1) {
        std::cerr << "gaze_runner: PCE_BENCH_GAZE_FRAMES must be >= 2 "
                     "and PCE_BENCH_REPEATS >= 1\n";
        return 1;
    }
    std::string out_path = "BENCH_encoder.json";
    if (argc > 1)
        out_path = argv[1];
    else if (const char *env = std::getenv("PCE_BENCH_OUT"))
        out_path = env;

    const DisplayGeometry geom = bench::benchDisplay(w, h);
    const GazeTrace path = pursuitPath(geom, frames);
    const ImageF frame =
        renderScene(SceneId::Office, {w, h, 0, 0.0, 0});

    const RefixResult refix = refixMicrobench(geom, path, repeats);
    const EncodeResult enc =
        movingEncodeBench(geom, path, frame, threads, repeats);

    const double refix_speedup =
        refix.incrementalMs > 0.0
            ? refix.rebuildMs / refix.incrementalMs
            : 0.0;
    const double moving_speedup =
        enc.rebuildMps > 0.0 ? enc.gazeMps / enc.rebuildMps : 0.0;

    std::ostringstream rec;
    rec << "  {\n"
        << "    \"bench\": \"gaze_encode\",\n"
        << "    \"date\": \"" << bench::isoNowUtc() << "\",\n"
        << "    \"git_rev\": \"" << PCE_GIT_REV << "\",\n"
        << "    \"simd_level\": \""
        << simd::simdLevelName(simd::activeSimdLevel()) << "\",\n"
        << "    \"width\": " << w << ",\n"
        << "    \"height\": " << h << ",\n"
        << "    \"frames\": " << frames << ",\n"
        << "    \"repeats\": " << repeats << ",\n"
        << "    \"hw_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "    \"mt_threads\": " << threads << ",\n"
        << "    \"mt_pool_workers\": " << (threads - 1) << ",\n"
        << "    \"refix_incremental_ms\": " << refix.incrementalMs
        << ",\n"
        << "    \"refix_rebuild_ms\": " << refix.rebuildMs << ",\n"
        << "    \"refix_speedup\": " << refix_speedup << ",\n"
        << "    \"refix_fallback_rebuilds\": " << refix.fallbacks
        << ",\n"
        << "    \"gaze_encode_mps\": " << enc.gazeMps << ",\n"
        << "    \"rebuild_encode_mps\": " << enc.rebuildMps << ",\n"
        << "    \"moving_fixation_speedup\": " << moving_speedup
        << ",\n"
        << "    \"saccade_frames\": " << enc.saccadeFrames << "\n"
        << "  }";
    bench::appendJsonRecord(out_path, rec.str());

    std::cout << "simd level: "
              << simd::simdLevelName(simd::activeSimdLevel())
              << " (git " << PCE_GIT_REV << ")\n"
              << frames << " re-fixations at " << w << "x" << h
              << ", " << threads << " threads\n"
              << "re-fixation: incremental " << refix.incrementalMs
              << " ms vs rebuild " << refix.rebuildMs << " ms ("
              << refix_speedup << "x, " << refix.fallbacks
              << " fallback rebuilds)\n"
              << "moving-fixation encode: gaze " << enc.gazeMps
              << " MP/s vs rebuild-per-frame " << enc.rebuildMps
              << " MP/s (" << moving_speedup << "x, "
              << enc.saccadeFrames << " saccade frames)\n"
              << "appended record to " << out_path << "\n";
    return 0;
}
