/**
 * @file
 * Full-frame encoder throughput runner: measures adjustFrame and
 * encodeFrame in megapixels/s (single-thread and multi-thread) and
 * *appends* a dated record to BENCH_encoder.json, so the file carries
 * the perf trajectory across PRs instead of one overwritten snapshot.
 *
 * The measured loop is the steady-state frame stream: outputs are
 * reused via adjustFrameInto / encodeFrameInto, so an animation loop
 * allocates nothing after the first frame (the zero-allocation claim
 * of docs/PERF.md is what this bench exercises).
 *
 * Resolution and thread count come from PCE_BENCH_WIDTH /
 * PCE_BENCH_HEIGHT / PCE_BENCH_THREADS; the output path defaults to
 * BENCH_encoder.json in the working directory (override with
 * PCE_BENCH_OUT or argv[1]). Each record carries the git revision
 * (stamped at build time by the pce_git_rev target / cmake/git_rev.cmake,
 * so incremental rebuilds across commits stay attributable), the active
 * SIMD dispatch level, and the actual pool thread counts used for the
 * MT numbers.
 */

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.hh"
#include "common/env.hh"
#include "core/pipeline.hh"
#include "obs/trace.hh"
#include "simd/tile_kernels.hh"

#ifdef PCE_HAVE_GIT_REV_HEADER
#include "pce_git_rev.h"  // build-time stamp (cmake/git_rev.cmake)
#endif
#ifndef PCE_GIT_REV
#define PCE_GIT_REV "unknown"
#endif

namespace {

using namespace pce;
using Clock = std::chrono::steady_clock;

/**
 * Single-thread full-frame throughput of the pre-change (seed)
 * implementation at 512x512, measured with this same runner (best of
 * interleaved baseline/new runs, identical build flags) before the
 * zero-allocation rebuild landed. Recorded so the JSON carries the
 * speedup-vs-baseline trajectory; re-baseline on different hardware by
 * rebuilding the seed revision with the current CMakeLists and rerunning
 * (methodology in docs/PERF.md).
 */
constexpr double kBaselineAdjustMps = 2.92;
constexpr double kBaselineEncodeMps = 2.24;
/**
 * Serial decode of the PR 2 tree (the seed-era bit-at-a-time reader
 * and per-pixel width branch) on the same adjusted 512x512 office
 * stream this runner measures, interleaved with the hardened
 * decodeInto immediately before it landed (best-of per round, 3
 * rounds: 84.4-87.2 MP/s). On a raw unadjusted-noise stream old and
 * new are at parity — the win concentrates where streams have flat
 * tiles, which adjusted production streams do.
 */
constexpr double kBaselineDecodeMps = 86.0;

struct Measurement
{
    double adjustMps = 0.0;
    double encodeMps = 0.0;
    double decodeMps = 0.0;
};

Measurement
measure(const ImageF &frame, const EccentricityMap &ecc, int threads,
        int repeats)
{
    PipelineParams params;
    params.threads = threads;
    const PerceptualEncoder encoder(bench::benchModel(), params);
    const double mpix =
        static_cast<double>(frame.pixelCount()) / 1e6;

    // Steady-state frame stream: outputs reused across iterations.
    ImageF adjusted;
    EncodedFrame enc;

    // Warm-up (populates lazy tables, faults pages, spins up workers,
    // grows the reused buffers to their steady-state size).
    encoder.adjustFrameInto(frame, ecc, adjusted);
    encoder.encodeFrameInto(frame, ecc, enc);

    // Decode side of the same stream: the hardened parallel decodeInto
    // in its steady state (caller-owned image + scratch, own pool so
    // the measurement matches a standalone decode service).
    ImageU8 decoded;
    BdDecodeScratch decode_scratch;
    std::unique_ptr<ThreadPool> decode_pool;
    if (threads > 1)
        decode_pool = std::make_unique<ThreadPool>(threads - 1);
    BdCodec::decodeInto(enc.bdStream, decoded, &decode_scratch,
                        decode_pool.get(), threads);

    Measurement m;
    double best_adjust = 1e300;
    double best_encode = 1e300;
    double best_decode = 1e300;
    for (int r = 0; r < repeats; ++r) {
        auto t0 = Clock::now();
        encoder.adjustFrameInto(frame, ecc, adjusted);
        auto t1 = Clock::now();
        encoder.encodeFrameInto(frame, ecc, enc);
        auto t2 = Clock::now();
        BdCodec::decodeInto(enc.bdStream, decoded, &decode_scratch,
                            decode_pool.get(), threads);
        auto t3 = Clock::now();
        if (adjusted.pixelCount() == 0 || enc.bdStream.empty() ||
            decoded != enc.adjustedSrgb)
            std::abort();  // keep the work observable (and lossless)
        best_adjust = std::min(
            best_adjust,
            std::chrono::duration<double>(t1 - t0).count());
        best_encode = std::min(
            best_encode,
            std::chrono::duration<double>(t2 - t1).count());
        best_decode = std::min(
            best_decode,
            std::chrono::duration<double>(t3 - t2).count());
    }
    m.adjustMps = mpix / best_adjust;
    m.encodeMps = mpix / best_encode;
    m.decodeMps = mpix / best_decode;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const int w = pce::bench::benchWidth();
    const int h = pce::bench::benchHeight();
    const int threads = pce::bench::benchThreads();
    const int repeats =
        static_cast<int>(pce::envInt("PCE_BENCH_REPEATS", 5));
    std::string out_path = "BENCH_encoder.json";
    if (argc > 1)
        out_path = argv[1];
    else if (const char *env = std::getenv("PCE_BENCH_OUT"))
        out_path = env;

    const ImageF frame =
        renderScene(SceneId::Office, {w, h, 0, 0.0, 0});
    const EccentricityMap ecc(pce::bench::benchDisplay(w, h));

    const Measurement single = measure(frame, ecc, 1, repeats);
    const Measurement multi =
        threads > 1 ? measure(frame, ecc, threads, repeats) : single;
    const int mt_threads = threads > 1 ? threads : 1;

    // Trace overhead: the same single-thread loop with tracing off vs
    // on, measured back to back so the pair shares thermal and cache
    // conditions. The off run is the shipping default (every span is
    // one relaxed load); the on run pays clock reads + ring stores.
    pce::obs::setTraceEnabled(false);
    const Measurement trace_off = measure(frame, ecc, 1, repeats);
    pce::obs::Tracer::instance().reset();
    pce::obs::setTraceEnabled(true);
    const Measurement trace_on = measure(frame, ecc, 1, repeats);
    pce::obs::setTraceEnabled(false);
    const std::uint64_t trace_events =
        pce::obs::Tracer::instance().recordedEvents();
    pce::obs::Tracer::instance().reset();
    const double trace_ratio =
        trace_off.encodeMps > 0.0
            ? trace_on.encodeMps / trace_off.encodeMps
            : 0.0;

    std::ostringstream rec;
    rec << "  {\n"
        << "    \"bench\": \"full_frame_encoder\",\n"
        << "    \"date\": \"" << pce::bench::isoNowUtc() << "\",\n"
        << "    \"git_rev\": \"" << PCE_GIT_REV << "\",\n"
        << "    \"simd_level\": \""
        << pce::simd::simdLevelName(pce::simd::activeSimdLevel())
        << "\",\n"
        << "    \"scene\": \"office\",\n"
        << "    \"width\": " << w << ",\n"
        << "    \"height\": " << h << ",\n"
        << "    \"repeats\": " << repeats << ",\n"
        << "    \"hw_threads\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "    \"mt_threads\": " << mt_threads << ",\n"
        << "    \"mt_pool_workers\": " << (mt_threads - 1) << ",\n"
        << "    \"adjust_mps_1t\": " << single.adjustMps << ",\n"
        << "    \"encode_mps_1t\": " << single.encodeMps << ",\n"
        << "    \"decode_mps_1t\": " << single.decodeMps << ",\n"
        << "    \"adjust_mps_mt\": " << multi.adjustMps << ",\n"
        << "    \"encode_mps_mt\": " << multi.encodeMps << ",\n"
        << "    \"decode_mps_mt\": " << multi.decodeMps << ",\n"
        << "    \"baseline_adjust_mps_1t\": " << kBaselineAdjustMps
        << ",\n"
        << "    \"baseline_encode_mps_1t\": " << kBaselineEncodeMps
        << ",\n"
        << "    \"baseline_decode_mps_1t\": " << kBaselineDecodeMps
        << ",\n"
        << "    \"adjust_speedup_vs_baseline\": "
        << (kBaselineAdjustMps > 0.0
                ? single.adjustMps / kBaselineAdjustMps
                : 0.0)
        << ",\n"
        << "    \"encode_speedup_vs_baseline\": "
        << (kBaselineEncodeMps > 0.0
                ? single.encodeMps / kBaselineEncodeMps
                : 0.0)
        << ",\n"
        << "    \"decode_speedup_vs_baseline\": "
        << (kBaselineDecodeMps > 0.0
                ? single.decodeMps / kBaselineDecodeMps
                : 0.0)
        << ",\n"
        << "    \"trace_off_encode_mps_1t\": " << trace_off.encodeMps
        << ",\n"
        << "    \"trace_on_encode_mps_1t\": " << trace_on.encodeMps
        << ",\n"
        << "    \"trace_on_vs_off\": " << trace_ratio << ",\n"
        << "    \"trace_events\": " << trace_events << "\n  }";
    pce::bench::appendJsonRecord(out_path, rec.str());

    std::cout << "simd level: "
              << pce::simd::simdLevelName(
                     pce::simd::activeSimdLevel())
              << " (git " << PCE_GIT_REV << ")\n"
              << "adjustFrame 1t: " << single.adjustMps << " MP/s\n"
              << "encodeFrame 1t: " << single.encodeMps << " MP/s\n"
              << "decodeInto  1t: " << single.decodeMps << " MP/s\n"
              << "adjustFrame " << mt_threads
              << "t: " << multi.adjustMps << " MP/s\n"
              << "encodeFrame " << mt_threads
              << "t: " << multi.encodeMps << " MP/s\n"
              << "decodeInto  " << mt_threads
              << "t: " << multi.decodeMps << " MP/s\n"
              << "encodeFrame 1t trace off/on: " << trace_off.encodeMps
              << " / " << trace_on.encodeMps << " MP/s (ratio "
              << trace_ratio << ", " << trace_events << " events)\n"
              << "appended record to " << out_path << "\n";
    return 0;
}
