/**
 * @file
 * Full-frame encoder throughput runner: measures adjustFrame and
 * encodeFrame in megapixels/s (single-thread and multi-thread) and
 * writes BENCH_encoder.json, seeding the perf trajectory across PRs.
 *
 * Resolution and thread count come from PCE_BENCH_WIDTH /
 * PCE_BENCH_HEIGHT / PCE_BENCH_THREADS; the output path defaults to
 * BENCH_encoder.json in the working directory (override with
 * PCE_BENCH_OUT or argv[1]).
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "common/env.hh"
#include "core/pipeline.hh"

namespace {

using namespace pce;
using Clock = std::chrono::steady_clock;

/**
 * Single-thread full-frame throughput of the pre-change (seed)
 * implementation at 512x512, measured with this same runner (best of
 * interleaved baseline/new runs, identical build flags) before the
 * zero-allocation rebuild landed. Recorded so the JSON carries the
 * speedup-vs-baseline trajectory; re-baseline on different hardware by
 * rebuilding the seed revision with the current CMakeLists and rerunning
 * (methodology in docs/PERF.md).
 */
constexpr double kBaselineAdjustMps = 2.92;
constexpr double kBaselineEncodeMps = 2.24;

struct Measurement
{
    double adjustMps = 0.0;
    double encodeMps = 0.0;
};

Measurement
measure(const ImageF &frame, const EccentricityMap &ecc, int threads,
        int repeats)
{
    PipelineParams params;
    params.threads = threads;
    const PerceptualEncoder encoder(bench::benchModel(), params);
    const double mpix =
        static_cast<double>(frame.pixelCount()) / 1e6;

    // Warm-up (populates lazy tables, faults pages, spins up workers).
    encoder.adjustFrame(frame, ecc);

    Measurement m;
    double best_adjust = 1e300;
    double best_encode = 1e300;
    for (int r = 0; r < repeats; ++r) {
        auto t0 = Clock::now();
        const ImageF adjusted = encoder.adjustFrame(frame, ecc);
        auto t1 = Clock::now();
        const EncodedFrame enc = encoder.encodeFrame(frame, ecc);
        auto t2 = Clock::now();
        if (adjusted.pixelCount() == 0 || enc.bdStream.empty())
            std::abort();  // keep the work observable
        best_adjust = std::min(
            best_adjust,
            std::chrono::duration<double>(t1 - t0).count());
        best_encode = std::min(
            best_encode,
            std::chrono::duration<double>(t2 - t1).count());
    }
    m.adjustMps = mpix / best_adjust;
    m.encodeMps = mpix / best_encode;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const int w = pce::bench::benchWidth();
    const int h = pce::bench::benchHeight();
    const int threads = pce::bench::benchThreads();
    const int repeats =
        static_cast<int>(pce::envInt("PCE_BENCH_REPEATS", 5));
    std::string out_path = "BENCH_encoder.json";
    if (argc > 1)
        out_path = argv[1];
    else if (const char *env = std::getenv("PCE_BENCH_OUT"))
        out_path = env;

    const ImageF frame =
        renderScene(SceneId::Office, {w, h, 0, 0.0, 0});
    const EccentricityMap ecc(pce::bench::benchDisplay(w, h));

    const Measurement single = measure(frame, ecc, 1, repeats);
    const Measurement multi =
        threads > 1 ? measure(frame, ecc, threads, repeats) : single;

    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"full_frame_encoder\",\n"
        << "  \"scene\": \"office\",\n"
        << "  \"width\": " << w << ",\n"
        << "  \"height\": " << h << ",\n"
        << "  \"repeats\": " << repeats << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"adjust_mps_1t\": " << single.adjustMps << ",\n"
        << "  \"encode_mps_1t\": " << single.encodeMps << ",\n"
        << "  \"adjust_mps_mt\": " << multi.adjustMps << ",\n"
        << "  \"encode_mps_mt\": " << multi.encodeMps << ",\n"
        << "  \"baseline_adjust_mps_1t\": " << kBaselineAdjustMps
        << ",\n"
        << "  \"baseline_encode_mps_1t\": " << kBaselineEncodeMps
        << ",\n"
        << "  \"adjust_speedup_vs_baseline\": "
        << (kBaselineAdjustMps > 0.0
                ? single.adjustMps / kBaselineAdjustMps
                : 0.0)
        << ",\n"
        << "  \"encode_speedup_vs_baseline\": "
        << (kBaselineEncodeMps > 0.0
                ? single.encodeMps / kBaselineEncodeMps
                : 0.0)
        << "\n}\n";

    std::cout << "adjustFrame 1t: " << single.adjustMps << " MP/s\n"
              << "encodeFrame 1t: " << single.encodeMps << " MP/s\n"
              << "adjustFrame " << threads
              << "t: " << multi.adjustMps << " MP/s\n"
              << "encodeFrame " << threads
              << "t: " << multi.encodeMps << " MP/s\n"
              << "wrote " << out_path << "\n";
    return 0;
}
