/**
 * @file
 * Fig. 15 reproduction: bandwidth reduction over NoCom for BD and for
 * our encoder at tile sizes T4..T16, per scene.
 *
 * Paper trend: the reduction peaks at 4x4 and drops as tiles grow;
 * beyond 8x8 our encoder can fall below plain 4x4 BD because a single
 * worst-case pixel pair dictates the whole tile's delta width.
 */

#include <iostream>

#include "bd/bd_codec.hh"
#include "bench_common.hh"
#include "metrics/report.hh"

using namespace pce;

int
main()
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const EccentricityMap ecc(bench::benchDisplay(w, h));
    const BdCodec bd4(4);

    const int tile_sizes[] = {4, 6, 8, 10, 12, 16};

    TextTable table(
        "Fig. 15: bandwidth reduction vs NoCom (%), ours by tile size, " +
        std::to_string(w) + "x" + std::to_string(h));
    table.setHeader({"scene", "BD(T4)", "T4", "T6", "T8", "T10", "T12",
                     "T16"});

    double t4_sum = 0.0;
    double t16_sum = 0.0;
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
        const ImageU8 srgb = toSrgb8(frame);
        std::vector<std::string> row{sceneName(id)};
        row.push_back(
            fmtDouble(bd4.analyze(srgb).reductionVsRawPercent(), 1));
        for (int tile : tile_sizes) {
            PipelineParams params;
            params.tileSize = tile;
            params.threads = bench::benchThreads();
            const PerceptualEncoder encoder(bench::benchModel(),
                                            params);
            const auto encoded = encoder.encodeFrame(frame, ecc);
            const double red =
                encoded.bdStats.reductionVsRawPercent();
            row.push_back(fmtDouble(red, 1));
            if (tile == 4)
                t4_sum += red;
            if (tile == 16)
                t16_sum += red;
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nMean reduction: T4 " << fmtDouble(t4_sum / 6.0, 1)
              << "% vs T16 " << fmtDouble(t16_sum / 6.0, 1)
              << "% (paper: compression degrades beyond 4x4 as larger "
                 "tiles must accommodate the worst-case pixel pair)\n";
    return 0;
}
