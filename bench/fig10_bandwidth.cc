/**
 * @file
 * Fig. 10 reproduction: DRAM bandwidth reduction of our perceptual
 * encoder versus the NoCom / SCC / BD / PNG baselines across the six VR
 * scenes (stereo frames).
 *
 * Paper headline numbers this bench regenerates the shape of:
 * 66.9% reduction vs NoCom, 50.3% vs SCC, 15.6% (up to 20.4%) vs BD;
 * PNG occasionally beats us on some scenes (it is offline-only).
 */

#include <iostream>

#include "bd/bd_codec.hh"
#include "bench_common.hh"
#include "metrics/report.hh"
#include "png/png_codec.hh"
#include "scc/scc_codec.hh"

using namespace pce;

int
main()
{
    const int w = bench::benchWidth();
    const int h = bench::benchHeight();
    const EccentricityMap ecc(bench::benchDisplay(w, h));

    PipelineParams params;
    params.threads = bench::benchThreads();
    const PerceptualEncoder encoder(bench::benchModel(), params);
    const BdCodec bd(4);

    const int scc_step =
        static_cast<int>(envInt("PCE_SCC_STEP", 8));
    const SccCodebook scc(bench::benchModel(),
                          SccParams{scc_step, 20.0});

    TextTable table("Fig. 10: bandwidth reduction vs NoCom (%), stereo, " +
                    std::to_string(w) + "x" + std::to_string(h) +
                    " per eye");
    table.setHeader({"scene", "SCC", "BD", "PNG", "Ours", "Ours vs BD",
                     "Ours vs SCC"});

    double sum_ours = 0.0;
    double sum_vs_bd = 0.0;
    double sum_vs_scc = 0.0;
    double max_vs_bd = -1e9;
    for (SceneId id : allScenes()) {
        const StereoFrame stereo = renderStereo(id, w, h);
        double bits_raw = 0.0;
        double bits_scc = 0.0;
        double bits_bd = 0.0;
        double bits_png = 0.0;
        double bits_ours = 0.0;
        for (const ImageF *frame : {&stereo.left, &stereo.right}) {
            const ImageU8 srgb = toSrgb8(*frame);
            bits_raw += 24.0 * static_cast<double>(srgb.pixelCount());
            bits_scc += static_cast<double>(scc.encode(srgb).size()) * 8;
            bits_bd +=
                static_cast<double>(bd.analyze(srgb).totalBits());
            bits_png += static_cast<double>(pngEncode(srgb).size()) * 8;
            bits_ours += static_cast<double>(
                encoder.encodeFrame(*frame, ecc).bdStats.totalBits());
        }
        const double red_scc = 100.0 * (1.0 - bits_scc / bits_raw);
        const double red_bd = 100.0 * (1.0 - bits_bd / bits_raw);
        const double red_png = 100.0 * (1.0 - bits_png / bits_raw);
        const double red_ours = 100.0 * (1.0 - bits_ours / bits_raw);
        const double vs_bd = 100.0 * (1.0 - bits_ours / bits_bd);
        const double vs_scc = 100.0 * (1.0 - bits_ours / bits_scc);
        sum_ours += red_ours;
        sum_vs_bd += vs_bd;
        sum_vs_scc += vs_scc;
        max_vs_bd = std::max(max_vs_bd, vs_bd);

        table.addRow({sceneName(id), fmtDouble(red_scc, 1),
                      fmtDouble(red_bd, 1), fmtDouble(red_png, 1),
                      fmtDouble(red_ours, 1), fmtDouble(vs_bd, 1),
                      fmtDouble(vs_scc, 1)});
    }
    table.print(std::cout);

    std::cout << "\nAverages (paper: 66.9% vs NoCom, 15.6% vs BD with up "
                 "to 20.4%, 50.3% vs SCC):\n";
    std::cout << "  ours vs NoCom: " << fmtDouble(sum_ours / 6.0, 1)
              << "%\n";
    std::cout << "  ours vs BD:    " << fmtDouble(sum_vs_bd / 6.0, 1)
              << "% (max " << fmtDouble(max_vs_bd, 1) << "%)\n";
    std::cout << "  ours vs SCC:   " << fmtDouble(sum_vs_scc / 6.0, 1)
              << "%\n";
    return 0;
}
