/**
 * @file
 * Ablations for the paper's declared extensions:
 *
 *  1. Fixed-point datapath width (Sec. 5.1: the RTL uses DesignWare
 *     fixed-point dividers/sqrt): accuracy and perceptual-constraint
 *     integrity versus fractional bits, answering "how wide must the
 *     Compute Extrema Block be".
 *  2. Variable bit-length BD (Sec. 3.1 footnote 1): what per-row delta
 *     widths buy on top of the paper's uniform-width tiles, with and
 *     without perceptual adjustment.
 *  3. Dark adaptation (Sec. 7): compression headroom as the viewing
 *     environment dims and discrimination weakens further.
 */

#include <iostream>

#include "bd/bd_codec.hh"
#include "bd/bd_variable.hh"
#include "bench_common.hh"
#include "hw/fixed_datapath.hh"
#include "metrics/report.hh"
#include "perception/adaptation.hh"

using namespace pce;

int
main()
{
    const int w = std::min<int>(bench::benchWidth(), 384);
    const int h = std::min<int>(bench::benchHeight(), 384);
    const EccentricityMap ecc(bench::benchDisplay(w, h));
    const auto &model = bench::benchModel();

    // --- 1. Fixed-point datapath width ------------------------------
    // Datapath-level error plus the end-to-end effect: the fixed
    // extrema backend is plugged into the full pipeline (same hook a
    // hardware-accurate simulator would use).
    TextTable fixed("Ablation: Compute-Extrema datapath width");
    fixed.setHeader({"frac bits", "max |error|", "RMS error",
                     "worst membership", "e2e bits/px (skyline)"});
    const ImageF fixed_frame =
        renderScene(SceneId::Skyline, {w, h, 0, 0.0, 0});
    for (int bits : {14, 16, 20, 24, 28, 32}) {
        const auto err =
            compareFixedDatapath(model, 150, FixedDatapathConfig{bits});
        PipelineParams fixed_params;
        fixed_params.threads = bench::benchThreads();
        fixed_params.extremaFn = [bits](const Ellipsoid &e, int axis) {
            return extremaAlongAxisFixed(e, axis,
                                         FixedDatapathConfig{bits});
        };
        const PerceptualEncoder fixed_enc(model, fixed_params);
        const double bpp =
            fixed_enc.encodeFrame(fixed_frame, ecc)
                .bdStats.bitsPerPixel();
        fixed.addRow({std::to_string(bits),
                      fmtDouble(err.maxAbsError, 6),
                      fmtDouble(err.rmsError, 6),
                      fmtDouble(err.maxMembership, 4),
                      fmtDouble(bpp, 2)});
    }
    fixed.print(std::cout);
    std::cout << "\nMembership 1.0 = exactly on the discrimination "
                 "ellipsoid; 24 fractional bits keep the\nperceptual "
                 "constraint to within 0.01% at unchanged compression "
                 "-- the width an RTL\nimplementation needs.\n\n";

    // --- 2. Variable bit-length BD (footnote 1) ---------------------
    PipelineParams params;
    params.threads = bench::benchThreads();
    const PerceptualEncoder encoder(model, params);
    const BdCodec uniform(4);
    const BdVariableCodec variable(4);

    TextTable var("Ablation: variable bit-length BD (bits/pixel)");
    var.setHeader({"scene", "BD", "varBD", "ours+BD", "ours+varBD",
                   "per-row tile-channels %"});
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
        const ImageU8 srgb = toSrgb8(frame);
        const auto adjusted = encoder.encodeFrame(frame, ecc);
        const auto var_raw = variable.analyze(srgb);
        const auto var_adj = variable.analyze(adjusted.adjustedSrgb);
        var.addRow(
            {sceneName(id),
             fmtDouble(uniform.analyze(srgb).bitsPerPixel(), 2),
             fmtDouble(var_raw.bitsPerPixel(), 2),
             fmtDouble(adjusted.bdStats.bitsPerPixel(), 2),
             fmtDouble(var_adj.bitsPerPixel(), 2),
             fmtDouble(100.0 * var_adj.perRowChannels /
                           (var_adj.perRowChannels +
                            var_adj.uniformChannels),
                       1)});
    }
    var.print(std::cout);
    std::cout << "\nMeasured: per-row widths win only on row-structured "
                 "content (thai, skyline) and the mode\nbit eats most of "
                 "the gain elsewhere -- consistent with the paper "
                 "calling variable widths\n'possible, but uncommon' "
                 "(footnote 1).\n\n";

    // --- 3. Dark adaptation (Sec. 7) --------------------------------
    TextTable dark("Ablation: dark adaptation vs compression "
                   "(dark scenes)");
    dark.setHeader({"ambient (cd/m^2)", "boost", "dumbo bpp",
                    "monkey bpp"});
    for (double ambient : {100.0, 10.0, 1.0, 0.1}) {
        const DarkAdaptationModel adapted(model, ambient);
        const PerceptualEncoder enc(adapted, params);
        std::vector<std::string> row{
            fmtDouble(ambient, 1), fmtDouble(adapted.boost(), 2)};
        for (SceneId id : {SceneId::Dumbo, SceneId::Monkey}) {
            const ImageF frame = renderScene(id, {w, h, 0, 0.0, 0});
            row.push_back(fmtDouble(
                enc.encodeFrame(frame, ecc).bdStats.bitsPerPixel(),
                2));
        }
        dark.addRow(std::move(row));
    }
    dark.print(std::cout);
    std::cout << "\nMeasured: the boost buys almost nothing here -- an "
                 "instructive negative result. Nearly all\ntiles are "
                 "case 2 (Fig. 12), where the collapsed channel already "
                 "costs zero delta bits and the\nplane position is "
                 "content-limited, not threshold-limited. Sec. 7's "
                 "adaptation headroom\nmaterializes only where tiles "
                 "are threshold-limited (case 1) or if the algorithm "
                 "were\nextended to optimize a second channel.\n";
    return 0;
}
