/**
 * @file
 * Sec. 6.2 (SCC discussion) reproduction: greedy set-cover codebook
 * statistics — codebook size, bits/pixel, and the encode/decode table
 * sizes that make SCC unusable as DRAM-path hardware (paper: ~32k
 * colors, 15 bits, 30 MB encode table, 96 KB decode table).
 */

#include <iostream>

#include "bench_common.hh"
#include "metrics/report.hh"
#include "scc/scc_codec.hh"

using namespace pce;

int
main()
{
    const int step = static_cast<int>(envInt("PCE_SCC_STEP", 8));

    TextTable table("Sec. 6.2: SCC codebook (greedy set cover)");
    table.setHeader({"ecc (deg)", "lattice", "|C|", "bits/px",
                     "encode table (MB)", "decode table (KB)"});

    for (double ecc : {10.0, 20.0, 30.0}) {
        const SccCodebook book(bench::benchModel(),
                               SccParams{step, ecc});
        const int dim = 256 / step;
        table.addRow({fmtDouble(ecc, 0),
                      std::to_string(dim) + "^3",
                      std::to_string(book.size()),
                      std::to_string(book.bitsPerPixel()),
                      fmtDouble(book.encodeTableBytesFullRes() /
                                    (1024.0 * 1024.0),
                                1),
                      fmtDouble(book.decodeTableBytes() / 1024.0, 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nPaper: 32,274 colors -> 15 bits/pixel, ~30 MB encode "
           "table, 96 KB decode table.\nThe cover here runs on a "
           "subsampled lattice (DESIGN.md): the ellipsoids are thin "
           "pancakes in RGB,\nso lattice merging is modest and the "
           "codebook lands in the same 14-16 bit regime.\nEither way "
           "the encode table is tens of MB -- unusable next to a "
           "36 KB CAU.\n";

    const AnalyticDiscriminationModel &model = bench::benchModel();
    const SccCodebook book(model, SccParams{step, 20.0});
    std::cout << "Cover validity check (violations): "
              << book.verifyCover(model) << "\n";
    return 0;
}
